//! The R interface (paper §IV-E2): `rmr2`-style map/reduce over SciDP
//! inputs, with slabs delivered as R data frames.
//!
//! An [`RJob`] is the Rust rendering of the paper's R program: the user
//! writes a map function over a [`MapSlab`] (typed array + coordinate data
//! frame) and an optional reduce function; [`ScidpInput`] decides whether
//! the input comes straight from the PFS (SciDP's whole point) or from
//! HDFS (vanilla behaviour, kept identical to Hadoop's).

use std::rc::Rc;

use mapreduce::{
    hdfs_file_splits, FlatPfsFetcher, InputSplit, Job, MapFn, MrEnv, MrError, Payload, TaskCtx,
    TaskInput,
};
use rframe::{image2d, ColorMap, Column, DataFrame, Raster};
use scifmt::Array;

use crate::error::ScidpError;
use crate::explorer::{parse_pfs_path, FileExplorer};
use crate::mapper::{DataMapper, MapperOptions};
use crate::placement::{Placement, PlacementPolicy};
use crate::reader::SciSlabFetcher;

/// Job input description (the `input=` argument of `rmr2::mapreduce`).
#[derive(Clone, Debug)]
pub struct ScidpInput {
    /// `lustre://dir`, `gpfs://dir`, or a plain HDFS path.
    pub path: String,
    /// Variable subsetting (maps to [`MapperOptions::variables`]).
    pub variables: Option<Vec<String>>,
    /// Split each chunk into this many dummy blocks.
    pub chunk_split: usize,
    /// Chunk-aligned mapping (default) or the misaligned ablation.
    pub align_to_chunks: bool,
    /// Dummy-block size for flat files (real bytes).
    pub flat_block_size: usize,
    /// Capacity of the job's shared decompressed-chunk cache in bytes
    /// (0 disables caching).
    pub cache_bytes: usize,
    /// Predicate pushed down to the PFS reader: chunks whose zone maps
    /// prove it false are skipped before any read, and surviving slabs
    /// arrive as predicate-filtered coordinate+value frames.
    pub pushdown: Option<rframe::Predicate>,
    /// How this job's dataset placement (cluster-cache admission) is
    /// decided. The default is a fixed [`Placement::PfsDirect`], which
    /// never admits — byte- and timing-identical to the pre-placement
    /// behaviour even when the cluster tier is enabled.
    pub placement: PlacementSpec,
}

/// How a job's dataset placement is chosen (see [`crate::placement`]).
#[derive(Clone, Debug)]
pub enum PlacementSpec {
    /// Use this placement unconditionally.
    Fixed(Placement),
    /// Consult a shared [`PlacementPolicy`]: access counts accumulate
    /// across every job that carries the same policy handle, so a dataset
    /// graduates PFS-direct → cached → pinned as a workflow re-reads it.
    Auto(Rc<PlacementPolicy>),
}

impl ScidpInput {
    pub fn path(p: impl Into<String>) -> ScidpInput {
        ScidpInput {
            path: p.into(),
            variables: None,
            chunk_split: 1,
            align_to_chunks: true,
            flat_block_size: 128 << 20,
            cache_bytes: scifmt::snc::DEFAULT_CACHE_BYTES,
            pushdown: None,
            placement: PlacementSpec::Fixed(Placement::PfsDirect),
        }
    }

    /// Select variables (`vars=` in the paper's API).
    pub fn vars<S: Into<String>>(mut self, names: impl IntoIterator<Item = S>) -> Self {
        self.variables = Some(names.into_iter().map(Into::into).collect());
        self
    }

    pub fn chunk_split(mut self, k: usize) -> Self {
        self.chunk_split = k.max(1);
        self
    }

    pub fn align_to_chunks(mut self, yes: bool) -> Self {
        self.align_to_chunks = yes;
        self
    }

    pub fn flat_block_size(mut self, bytes: usize) -> Self {
        self.flat_block_size = bytes;
        self
    }

    /// Size the job's decompressed-chunk cache (0 disables caching).
    pub fn cache_bytes(mut self, bytes: usize) -> Self {
        self.cache_bytes = bytes;
        self
    }

    /// Push a predicate down to the PFS reader (PFS inputs only).
    pub fn pushdown(mut self, p: Option<rframe::Predicate>) -> Self {
        self.pushdown = p;
        self
    }

    /// Fix the dataset placement for this job.
    pub fn placement(mut self, p: Placement) -> Self {
        self.placement = PlacementSpec::Fixed(p);
        self
    }

    /// Let a shared policy decide placement from observed access counts.
    pub fn placement_auto(mut self, policy: Rc<PlacementPolicy>) -> Self {
        self.placement = PlacementSpec::Auto(policy);
        self
    }
}

/// Extra info returned by split construction.
#[derive(Clone, Debug, Default)]
pub struct SetupInfo {
    /// Virtual seconds of metadata work (explorer scan + mapping table).
    pub setup_cost: f64,
    /// Real bytes of selected data on the PFS (0 for HDFS inputs).
    pub mapped_bytes: u64,
    /// Real bytes skipped by subsetting.
    pub skipped_bytes: u64,
    /// Number of virtual files created.
    pub virtual_files: usize,
    /// `(pfs_path, mtime, size)` of every mapped source file, for
    /// job-launch revalidation (empty for HDFS inputs).
    pub sources: Vec<(String, u64, u64)>,
    /// The job's shared decompressed-chunk cache (PFS inputs only) — the
    /// workflow reads its quarantine count into the job counters.
    pub chunk_cache: Option<std::sync::Arc<scifmt::snc::ChunkCache>>,
    /// Serialized zone-map bytes across the mapped variables — the header
    /// metadata a pushdown scan reads in exchange for the chunks it skips.
    pub zone_map_bytes: u64,
    /// The placement decided for this job's dataset (PFS inputs only).
    /// `HdfsMaterialised` is a recommendation recorded here for the
    /// workflow layer — the splits themselves still read PFS-direct.
    pub placement: Option<Placement>,
}

/// Build input splits for a [`ScidpInput`] — the `addInputPath` hook.
///
/// PFS-prefixed paths run the File Explorer + Data Mapper and produce
/// PFS-reader splits; other paths enumerate HDFS blocks exactly like the
/// stock `FileInputFormat` ("if a match cannot be found, SciDP will behave
/// as the original Hadoop").
pub fn make_splits(
    env: &MrEnv,
    input: &ScidpInput,
) -> Result<(Vec<InputSplit>, SetupInfo), ScidpError> {
    if let Some(dir) = parse_pfs_path(&input.path) {
        let report = {
            let pfs = env.pfs.borrow();
            FileExplorer::scan(&pfs, dir)?
        };
        let opts = MapperOptions {
            variables: input.variables.clone(),
            chunk_split: input.chunk_split,
            align_to_chunks: input.align_to_chunks,
            flat_block_size: input.flat_block_size,
            ..MapperOptions::default()
        };
        let mapping = {
            let mut h = env.hdfs.borrow_mut();
            DataMapper::map_to_hdfs(&mut h.namenode, &report, &opts)?
        };
        // One decompressed-chunk cache shared by every fetcher of this job
        // (keys are content-unique per file, so one pool serves them all).
        let cache = std::sync::Arc::new(scifmt::snc::ChunkCache::new(input.cache_bytes));
        let plan = input.pushdown.clone().map(std::sync::Arc::new);
        // Placement decision for this dataset: one per job, applied to
        // every scientific fetcher. Aggregate capacity is what the whole
        // tier could hold (0 while the tier is off, forcing PfsDirect).
        let aggregate_cache = env.cluster_cache.per_node_capacity() * env.topo.n_compute() as u64;
        let placement = match &input.placement {
            PlacementSpec::Fixed(p) => *p,
            PlacementSpec::Auto(policy) => {
                policy.observe(&input.path, mapping.mapped_bytes, aggregate_cache)
            }
        };
        let cluster_admit = placement.cluster_admit();
        let mut zone_map_bytes = 0u64;
        let mut zone_seen: std::collections::HashSet<(String, String)> =
            std::collections::HashSet::new();
        let mut splits = Vec::with_capacity(mapping.blocks.len());
        for b in &mapping.blocks {
            let fetcher: Rc<dyn mapreduce::SplitFetcher> = match (&b.descriptor, &b.var) {
                (
                    hdfs::VirtualBlock::SciSlab {
                        pfs_path,
                        start,
                        count,
                        ..
                    },
                    Some((var, off)),
                ) => {
                    if let Some(pred) = &plan {
                        // A predicate naming a column the variable cannot
                        // produce is a caller error, not an empty result:
                        // report it before the job runs.
                        for col in pred.columns() {
                            let known = col == "value" || var.dims.iter().any(|d| d.name == col);
                            if !known {
                                return Err(ScidpError::PushdownColumn {
                                    column: col.to_string(),
                                    variable: var.name.clone(),
                                });
                            }
                        }
                    }
                    if zone_seen.insert((pfs_path.clone(), var.name.clone())) {
                        zone_map_bytes += var.zone_map_wire_bytes();
                    }
                    Rc::new(TaggedSciFetcher {
                        inner: SciSlabFetcher {
                            pfs_path: pfs_path.clone(),
                            var: var.clone(),
                            data_offset: *off,
                            start: start.clone(),
                            count: count.clone(),
                            cache: cache.clone(),
                            pushdown: plan.clone(),
                            cluster_admit,
                        },
                    })
                }
                (
                    hdfs::VirtualBlock::FlatRange {
                        pfs_path,
                        offset,
                        len,
                    },
                    _,
                ) => Rc::new(FlatPfsFetcher {
                    pfs_path: pfs_path.clone(),
                    offset: *offset,
                    len: *len,
                    sequential_chunks: 1,
                }),
                // The Data Mapper emits SciSlab entries with var metadata
                // and FlatRange entries without; anything else means the
                // mapping table was built by a different code path.
                other => {
                    return Err(ScidpError::Hdfs(format!(
                        "inconsistent mapping entry: {other:?}"
                    )))
                }
            };
            splits.push(InputSplit {
                length: b.len,
                locations: Vec::new(), // dummy blocks carry no locations
                fetcher,
            });
        }
        let cost = simnet::CostModel::default();
        Ok((
            splits,
            SetupInfo {
                setup_cost: report.setup_cost(&cost),
                mapped_bytes: mapping.mapped_bytes,
                skipped_bytes: mapping.skipped_bytes,
                virtual_files: mapping.virtual_files.len(),
                sources: mapping.sources,
                chunk_cache: Some(cache),
                zone_map_bytes,
                placement: Some(placement),
            },
        ))
    } else {
        // Vanilla path: every file under the HDFS directory. A path that
        // resolves on neither the PFS nor HDFS is the caller's mistake,
        // reported as such rather than a generic namespace error.
        let files = env
            .hdfs
            .borrow()
            .namenode
            .list_files_recursive(&input.path)
            .map_err(|e| match e {
                hdfs::NsError::NotFound(_) => ScidpError::BadInputPath(input.path.clone()),
                other => ScidpError::Hdfs(other.to_string()),
            })?;
        let mut splits = Vec::new();
        for f in files {
            splits.extend(
                hdfs_file_splits(env, &f.path).map_err(|e| ScidpError::Hdfs(e.to_string()))?,
            );
        }
        Ok((splits, SetupInfo::default()))
    }
}

/// Wraps [`SciSlabFetcher`] to tag the result with slab coordinates so the
/// R layer can reconstruct keys.
struct TaggedSciFetcher {
    inner: SciSlabFetcher,
}

fn encode_tag(fetcher: &SciSlabFetcher) -> String {
    let dims: Vec<String> = fetcher.var.dims.iter().map(|d| d.name.clone()).collect();
    encode_slab_tag(&fetcher.pfs_path, &fetcher.var.name, &dims, &fetcher.start)
}

/// Encode slab metadata into the split tag [`decode_tag`] parses. Public so
/// baselines delivering identical slabs (SciHadoop) can produce compatible
/// tags.
pub fn encode_slab_tag(file: &str, var: &str, dims: &[String], origin: &[usize]) -> String {
    let origin: Vec<String> = origin.iter().map(|s| s.to_string()).collect();
    format!(
        "{}\u{1}{}\u{1}{}\u{1}{}",
        file,
        var,
        dims.join(","),
        origin.join(",")
    )
}

/// Parse a tag produced by a slab fetcher.
pub fn decode_tag(tag: &str) -> Option<(String, String, Vec<String>, Vec<usize>)> {
    let mut it = tag.split('\u{1}');
    let file = it.next()?.to_string();
    let var = it.next()?.to_string();
    let dims: Vec<String> = it.next()?.split(',').map(str::to_string).collect();
    let origin: Vec<usize> = it
        .next()?
        .split(',')
        .map(|s| s.parse().ok())
        .collect::<Option<_>>()?;
    Some((file, var, dims, origin))
}

impl mapreduce::SplitFetcher for TaggedSciFetcher {
    fn fetch(
        &self,
        env: &MrEnv,
        sim: &mut simnet::Sim,
        node: simnet::NodeId,
        done: mapreduce::FetchDone,
    ) {
        let tag = encode_tag(&self.inner);
        self.inner.fetch(
            env,
            sim,
            node,
            Box::new(move |sim, fr| {
                done(
                    sim,
                    fr.map(|mut fr| {
                        fr.tag = tag;
                        fr
                    }),
                );
            }),
        );
    }

    fn open_stream(
        &self,
        env: &MrEnv,
        sim: &mut simnet::Sim,
        node: simnet::NodeId,
    ) -> Result<Box<dyn mapreduce::PieceStream>, mapreduce::StreamFallback> {
        // Forward the inner fetcher's fallback reason unchanged (e.g.
        // `Pushdown` from the slab reader) so the counter tags stay honest.
        let inner = self.inner.open_stream(env, sim, node)?;
        Ok(mapreduce::retag_stream(inner, encode_tag(&self.inner)))
    }

    fn cache_hints(&self) -> Vec<simnet::ChunkKey> {
        self.inner.cache_hints()
    }

    fn describe(&self) -> String {
        self.inner.describe()
    }
}

/// What the R map function receives: the slab as a typed array plus the
/// coordinate data frame SciDP prepares ("multi-dimensional array will be
/// prepared as R data frame").
#[derive(Debug, Clone)]
pub struct MapSlab {
    /// PFS file the slab came from.
    pub file: String,
    /// Variable name.
    pub var: String,
    /// Dimension names (e.g. `["lev", "lat", "lon"]`).
    pub dims: Vec<String>,
    /// Global element origin of the slab.
    pub origin: Vec<usize>,
    /// The slab itself.
    pub array: Array,
    /// Coordinate + value frame (columns: one per dim, plus `value`).
    pub frame: DataFrame,
}

/// R-side execution context: plotting and SQL with proper cost charging.
pub struct RCtx<'a> {
    pub(crate) inner: &'a mut TaskCtx,
    /// Logical output image size (the paper renders 1200x1200).
    pub logical_image: (u64, u64),
    /// Real raster size (scaled with the dataset).
    pub raster: (u32, u32),
    /// Logical rows per real row (the dataset's spatial scale factor).
    pub scale: f64,
}

impl<'a> RCtx<'a> {
    /// Wrap an engine task context for R-side execution (used by SciDP
    /// itself and by baselines that reuse the same R program).
    pub fn new(
        inner: &'a mut TaskCtx,
        logical_image: (u64, u64),
        raster: (u32, u32),
        scale: f64,
    ) -> RCtx<'a> {
        RCtx {
            inner,
            logical_image,
            raster,
            scale,
        }
    }

    /// Plot one level with `image2D` on the Cairo device: real raster, PNG
    /// encoding, and a virtual charge for the paper-sized render. A grid
    /// whose dimensions do not match the data fails the task with a typed
    /// error rather than panicking the engine.
    pub fn image2d(
        &mut self,
        grid: &[f64],
        rows: usize,
        cols: usize,
        cmap: ColorMap,
    ) -> Result<Raster, MrError> {
        let r = image2d(grid, rows, cols, self.raster.0, self.raster.1, cmap)
            .map_err(|e| MrError::msg(format!("image2d: {e}")))?;
        let pixels = self.logical_image.0 * self.logical_image.1;
        self.inner.charge("plot", self.inner.cost().plot(pixels));
        Ok(r)
    }

    /// Run a `sqldf` query against frames, charging per logical row.
    pub fn sqldf(
        &mut self,
        query: &str,
        env: &std::collections::HashMap<&str, &DataFrame>,
    ) -> Result<DataFrame, MrError> {
        let rows: usize = env.values().map(|f| f.n_rows()).sum();
        let logical_rows = (rows as f64 * self.scale) as u64;
        self.inner
            .charge("analysis", self.inner.cost().sql(logical_rows));
        rframe::sqldf(query, env).map_err(|e| MrError::msg(e.to_string()))
    }

    /// Emit an image keyed for the reduce side (`rhdfs` store).
    pub fn emit_image(&mut self, key: impl Into<String>, raster: &Raster) {
        self.inner.emit(key, Payload::Bytes(raster.to_png()));
    }

    /// Emit a data frame.
    pub fn emit_frame(&mut self, key: impl Into<String>, frame: DataFrame) {
        self.inner.emit(key, Payload::Frame(frame));
    }

    /// Emit raw bytes.
    pub fn emit_bytes(&mut self, key: impl Into<String>, bytes: Vec<u8>) {
        self.inner.emit(key, Payload::Bytes(bytes));
    }

    /// Extra compute charge (e.g. bespoke numeric analysis).
    pub fn charge(&mut self, phase: &'static str, secs: f64) {
        self.inner.charge(phase, secs);
    }

    pub fn cost(&self) -> &simnet::CostModel {
        self.inner.cost()
    }
}

/// R map closure.
pub type RMapFn = Rc<dyn Fn(&MapSlab, &mut RCtx) -> Result<(), MrError>>;
/// R reduce closure (one key group).
pub type RReduceFn = Rc<dyn Fn(&str, Vec<Payload>, &mut RCtx) -> Result<(), MrError>>;

/// An R-level SciDP job (the `rmr2::mapreduce(input=..., map=..., reduce=...)`
/// call of §IV-E).
#[derive(Clone)]
pub struct RJob {
    pub name: String,
    pub input: ScidpInput,
    pub map: RMapFn,
    pub reduce: Option<RReduceFn>,
    pub n_reducers: usize,
    pub output_dir: String,
    /// Logical image size for plot charges.
    pub logical_image: (u64, u64),
    /// Real raster size; `(0, 0)` derives it from the dataset scale so
    /// real PNG bytes and logical image bytes stay proportional.
    pub raster: (u32, u32),
    /// Intra-task read/compute overlap policy forwarded to the engine job.
    pub stream: mapreduce::StreamConfig,
}

/// Build the slab's coordinate data frame (really, with real columns).
///
/// Fails when the dim names collide (duplicate dims, or a dim literally
/// named `value`) or when `origin` is shorter than the array rank.
pub fn slab_to_frame(
    dims: &[String],
    origin: &[usize],
    array: &Array,
) -> Result<DataFrame, MrError> {
    let shape = array.shape().to_vec();
    let n = array.len();
    let rank = shape.len();
    let mut coord_cols: Vec<Vec<i64>> = vec![Vec::with_capacity(n); rank];
    let mut coords = vec![0usize; rank];
    let mut values = Vec::with_capacity(n);
    for i in 0..n {
        for ((col, &c), &o) in coord_cols.iter_mut().zip(&coords).zip(origin) {
            col.push((o + c) as i64);
        }
        values.push(array.get_f64(i));
        // Row-major odometer: bump the innermost dimension, carry left.
        for (c, &s) in coords.iter_mut().zip(&shape).rev() {
            *c += 1;
            if *c < s {
                break;
            }
            *c = 0;
        }
    }
    let mut df = DataFrame::new();
    for (name, col) in dims.iter().zip(coord_cols) {
        df = df
            .with_column(name.clone(), Column::I64(col))
            .map_err(|e| MrError::msg(format!("slab frame column {name:?}: {e}")))?;
    }
    df.with_column("value", Column::F64(values))
        .map_err(|e| MrError::msg(format!("slab frame value column: {e}")))
}

/// Real raster size derived from the dataset scale so that real PNG bytes
/// and logical image bytes stay proportional.
pub fn derived_raster(logical_image: (u64, u64), scale: f64) -> (u32, u32) {
    let w = ((logical_image.0 as f64 / scale.sqrt()).round() as u32).max(8);
    let h = ((logical_image.1 as f64 / scale.sqrt()).round() as u32).max(8);
    (w, h)
}

/// Wrap an R map function into an engine map function: decode the slab tag,
/// charge the binary→frame conversion, build the coordinate frame, run the
/// user code under an [`RCtx`]. Reused by the SciHadoop baseline, whose
/// tasks receive identical slabs (staged on HDFS instead of the PFS).
pub fn wrap_r_map(
    user_map: RMapFn,
    logical_image: (u64, u64),
    raster: (u32, u32),
    scale: f64,
) -> MapFn {
    Rc::new(move |input, ctx| {
        let TaskInput::Array(array) = input else {
            return Err(MrError::msg(
                "SciDP R job expects scientific slabs; flat inputs need a bytes map",
            ));
        };
        let (file, var, dims, origin) =
            decode_tag(ctx.input_tag()).ok_or_else(|| MrError::msg("missing slab tag"))?;
        // Convert binary slab into the R data frame ("Convert" in
        // Fig. 7 — cheap for SciDP because the data is already binary).
        let raw = array.len() * array.dtype().size();
        ctx.charge("convert", ctx.cost().binary_convert(raw));
        let frame = slab_to_frame(&dims, &origin, &array)?;
        let slab = MapSlab {
            file,
            var,
            dims,
            origin,
            array,
            frame,
        };
        let mut rctx = RCtx {
            inner: ctx,
            logical_image,
            raster,
            scale,
        };
        (user_map)(&slab, &mut rctx)
    })
}

/// Wrap an R reduce function into an engine reduce function.
pub fn wrap_r_reduce(
    user_reduce: RReduceFn,
    logical_image: (u64, u64),
    raster: (u32, u32),
    scale: f64,
) -> mapreduce::ReduceFn {
    Rc::new(move |key, values, ctx| {
        let mut rctx = RCtx {
            inner: ctx,
            logical_image,
            raster,
            scale,
        };
        (user_reduce)(key, values, &mut rctx)
    })
}

impl RJob {
    /// Lower to an engine [`Job`] plus setup info. `scale` is the
    /// dataset's logical/real factor (from `sim.cost.scale`).
    pub fn into_job(self, env: &MrEnv, scale: f64) -> Result<(Job, SetupInfo), ScidpError> {
        let (splits, setup) = make_splits(env, &self.input)?;
        let logical_image = self.logical_image;
        let raster = if self.raster == (0, 0) {
            derived_raster(logical_image, scale)
        } else {
            self.raster
        };
        let map_fn = wrap_r_map(self.map.clone(), logical_image, raster, scale);
        let reduce_fn = self
            .reduce
            .clone()
            .map(|r| wrap_r_reduce(r, logical_image, raster, scale));
        Ok((
            Job {
                name: self.name,
                splits,
                map_fn,
                reduce_fn,
                n_reducers: self.n_reducers,
                output_dir: self.output_dir,
                spill_to_pfs: false,
                output_to_pfs: false,
                ft: mapreduce::FtConfig::default(),
                stream: self.stream,
                shuffle: None,
            },
            setup,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_roundtrip() {
        let var = scifmt::VarMeta {
            name: "QR".into(),
            dtype: scifmt::DType::F32,
            dims: vec![
                scifmt::Dim {
                    name: "lev".into(),
                    len: 4,
                },
                scifmt::Dim {
                    name: "lat".into(),
                    len: 8,
                },
            ],
            chunk_shape: vec![2, 8],
            codec: scifmt::Codec::None,
            attrs: vec![],
            chunks: vec![],
        };
        let f = SciSlabFetcher {
            pfs_path: "run/f.snc".into(),
            var: std::sync::Arc::new(var),
            data_offset: 64,
            start: vec![2, 0],
            count: vec![2, 8],
            cache: std::sync::Arc::new(scifmt::ChunkCache::new(0)),
            pushdown: None,
            cluster_admit: None,
        };
        let tag = encode_tag(&f);
        let (file, var, dims, origin) = decode_tag(&tag).unwrap();
        assert_eq!(file, "run/f.snc");
        assert_eq!(var, "QR");
        assert_eq!(dims, vec!["lev", "lat"]);
        assert_eq!(origin, vec![2, 0]);
        assert!(decode_tag("garbage").is_none());
    }

    #[test]
    fn slab_frame_has_global_coordinates() {
        let a = Array::from_f32(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let df = slab_to_frame(&["lev".to_string(), "lon".to_string()], &[10, 20], &a).unwrap();
        assert_eq!(df.n_rows(), 6);
        assert_eq!(
            df.names(),
            &["lev".to_string(), "lon".into(), "value".into()]
        );
        // Row 0: global coords (10, 20), value 1.0.
        assert_eq!(df.column("lev").unwrap().value(0), rframe::Value::I64(10));
        assert_eq!(df.column("lon").unwrap().value(5), rframe::Value::I64(22));
        assert_eq!(df.f64_column("value").unwrap()[4], 5.0);
    }

    #[test]
    fn input_builder() {
        let i = ScidpInput::path("lustre://run").vars(["QR"]).chunk_split(3);
        assert_eq!(i.variables, Some(vec!["QR".to_string()]));
        assert_eq!(i.chunk_split, 3);
        assert!(parse_pfs_path(&i.path).is_some());
    }
}
