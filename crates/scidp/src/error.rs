//! SciDP error type.

use std::fmt;

#[derive(Debug, Clone)]
pub enum ScidpError {
    /// Input path is not on the PFS and not on HDFS.
    BadInputPath(String),
    /// PFS-level failure (missing file, bad range).
    Pfs(String),
    /// HDFS namespace failure while building the mirror.
    Hdfs(String),
    /// Scientific format failure (corrupt container, missing variable).
    Format(scifmt::FmtError),
    /// Requested variables not present in any input file.
    NoMatchingVariables(Vec<String>),
    /// Data failed checksum verification and could not be repaired.
    Integrity(String),
    /// A mapped source file vanished from the PFS after the scan — the
    /// mapping cannot be rebuilt, only failed.
    StaleMapping { path: String, reason: String },
    /// A pushdown predicate references a column the mapped variable does
    /// not produce (neither a dimension name nor `value`).
    PushdownColumn { column: String, variable: String },
    /// The failure detector declared so many nodes dead that fewer task
    /// slots than the configured floor remain live — the job is failed
    /// rather than limping along below quorum.
    QuorumLost { live_slots: usize, floor: usize },
}

impl fmt::Display for ScidpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScidpError::BadInputPath(p) => write!(f, "bad input path: {p}"),
            ScidpError::Pfs(m) => write!(f, "PFS error: {m}"),
            ScidpError::Hdfs(m) => write!(f, "HDFS error: {m}"),
            ScidpError::Format(e) => write!(f, "format error: {e}"),
            ScidpError::NoMatchingVariables(v) => {
                write!(f, "no input file contains any of the variables {v:?}")
            }
            ScidpError::Integrity(m) => write!(f, "{m}"),
            ScidpError::StaleMapping { path, reason } => {
                write!(f, "stale mapping: source file {path}: {reason}")
            }
            ScidpError::PushdownColumn { column, variable } => {
                write!(
                    f,
                    "pushdown predicate references unknown column {column:?} \
                     (variable {variable} produces its dimensions and \"value\")"
                )
            }
            ScidpError::QuorumLost { live_slots, floor } => {
                write!(
                    f,
                    "quorum lost: {live_slots} live slot(s), floor is {floor}"
                )
            }
        }
    }
}

impl std::error::Error for ScidpError {}

impl From<scifmt::FmtError> for ScidpError {
    fn from(e: scifmt::FmtError) -> Self {
        ScidpError::Format(e)
    }
}
