//! # scidp — Scientific Data Processing (the paper's contribution)
//!
//! SciDP lets the Hadoop-side `mapreduce` engine process scientific data
//! that lives on the PFS **without copying it to HDFS and without
//! converting it to text**. Three components (paper §III, Fig. 3):
//!
//! * **File Explorer** ([`explorer`]) — the Path Reader lists the PFS input
//!   directory; the Sci-format Head Reader probes each file (`nc_open` /
//!   `H5Fis_hdf5` style) and classifies it as *flat* or *scientific*,
//!   extracting container metadata for the latter.
//! * **Data Mapper** ([`mapper`]) — mirrors each scientific file as a
//!   directory tree on HDFS (one virtual file per variable, subdirectories
//!   per group) and fills the NameNode's Virtual Mapping Table with
//!   *dummy blocks*: chunk-aligned by default, optionally split for finer
//!   task granularity, with variable-level subsetting.
//! * **PFS Reader** ([`reader`]) — inside each map task, fetches the
//!   block's compressed chunks straight from the PFS with whole-extent
//!   single reads, decompresses, and assembles the hyperslab. Reads from
//!   concurrent tasks proceed in parallel and overlap with other tasks'
//!   compute.
//!
//! On top sits the **R interface** ([`rapi`], [`workflow`]): map/reduce
//! functions receive slabs as R data frames, plot levels with `image2d`,
//! analyse with `sqldf`, and store results to HDFS — the NU-WRF case study
//! of §IV.

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod error;
pub mod explorer;
pub mod mapper;
pub mod placement;
pub mod pushdown;
pub mod rapi;
pub mod reader;
pub mod workflow;

pub use error::ScidpError;
pub use explorer::{parse_pfs_path, ExploreReport, ExploredFile, FileExplorer, FileFormat};
pub use mapper::{DataMapper, MappedBlock, MapperOptions, Mapping, Revalidation};
pub use placement::{Placement, PlacementConfig, PlacementPolicy};
pub use rapi::{
    decode_tag, derived_raster, encode_slab_tag, make_splits, wrap_r_map, wrap_r_reduce, MapSlab,
    PlacementSpec, RCtx, RJob, RMapFn, RReduceFn, ScidpInput, SetupInfo,
};
pub use reader::{ReaderSession, SciSlabFetcher};
pub use workflow::{
    build_rjob, build_stats_dag, nuwrf_map_fn, nuwrf_reduce_fn, run_scidp, run_sql_scan,
    run_stats_dag, Analysis, SqlScanConfig, StatsDagConfig, WorkflowConfig, WorkflowReport,
};
