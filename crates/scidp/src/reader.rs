//! PFS Reader: the in-task fetcher for scientific dummy blocks
//! (paper §III-A.3).
//!
//! Each map task spawns its own reader; the reader resolves its slab to the
//! intersecting compressed chunks, issues **one whole-extent read per
//! chunk** (SciDP "reads the entire block in a single I/O request to
//! maximize the bandwidth", vs. original Hadoop's 64 KB record reads), all
//! chunks in parallel, decompresses, and assembles the hyperslab into a
//! typed array. With many tasks running across nodes, many readers hit the
//! PFS concurrently — that aggregate parallel read is Figure 6's "SciDP"
//! series.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

use mapreduce::{FetchResult, MrEnv, SplitFetcher, TaskInput};
use scifmt::hyperslab;
use scifmt::snc::{assemble_slab, chunk_extents_of};
use scifmt::VarMeta;
use simnet::{NodeId, Sim};

/// Fetches one scientific dummy block (a variable hyperslab) from the PFS.
pub struct SciSlabFetcher {
    pub pfs_path: String,
    pub var: Arc<VarMeta>,
    /// Absolute offset of the container's data section.
    pub data_offset: usize,
    /// Element slab this block covers.
    pub start: Vec<usize>,
    pub count: Vec<usize>,
}

impl SplitFetcher for SciSlabFetcher {
    fn fetch(
        &self,
        env: &MrEnv,
        sim: &mut Sim,
        node: NodeId,
        done: Box<dyn FnOnce(&mut Sim, FetchResult)>,
    ) {
        let shape = self.var.shape();
        let ids = hyperslab::chunks_for_slab(&shape, &self.var.chunk_shape, &self.start, &self.count);
        let extents = chunk_extents_of(&self.var, self.data_offset);
        let needed: Vec<(usize, u64, u64, u64)> = ids
            .iter()
            .map(|&i| (i, extents[i].offset, extents[i].clen, extents[i].rlen))
            .collect();
        let var = self.var.clone();
        let start = self.start.clone();
        let count = self.count.clone();
        let total_raw: u64 = needed.iter().map(|&(_, _, _, r)| r).sum();
        let decompress_cost = sim.cost.decompress(total_raw as usize);

        // Fetch all chunk extents in parallel; decode + assemble when the
        // last one lands.
        let collected: Rc<RefCell<HashMap<usize, Vec<u8>>>> =
            Rc::new(RefCell::new(HashMap::new()));
        let remaining = Rc::new(RefCell::new(needed.len()));
        let done_cell = Rc::new(RefCell::new(Some(done)));
        if needed.is_empty() {
            let d = done_cell.borrow_mut().take().unwrap();
            let array = assemble_slab(&var, &start, &count, |_| {
                unreachable!("empty slab needs no chunks")
            })
            .expect("empty slab assembles");
            sim.after(0.0, move |sim| {
                d(
                    sim,
                    FetchResult {
                        input: TaskInput::Array(array),
                        charges: vec![],
                        tag: String::new(),
                    },
                )
            });
            return;
        }
        for (idx, offset, clen, _rlen) in needed {
            let collected = collected.clone();
            let remaining = remaining.clone();
            let done_cell = done_cell.clone();
            let var = var.clone();
            let start = start.clone();
            let count = count.clone();
            pfs::read_at(
                sim,
                &env.topo,
                &env.pfs,
                node,
                &self.pfs_path,
                offset as usize,
                clen as usize,
                move |sim, frame| {
                    // Real decode of the real chunk bytes.
                    let raw = scifmt::codec::decompress(&frame)
                        .expect("stored chunk decodes");
                    collected.borrow_mut().insert(idx, raw);
                    let mut rem = remaining.borrow_mut();
                    *rem -= 1;
                    if *rem > 0 {
                        return;
                    }
                    drop(rem);
                    let chunks = std::mem::take(&mut *collected.borrow_mut());
                    let array = assemble_slab(&var, &start, &count, |i| {
                        chunks
                            .get(&i)
                            .cloned()
                            .ok_or_else(|| scifmt::FmtError::NotFound(format!("chunk {i}")))
                    })
                    .expect("slab assembles from fetched chunks");
                    let d = done_cell.borrow_mut().take().expect("single completion");
                    d(
                        sim,
                        FetchResult {
                            input: TaskInput::Array(array),
                            charges: vec![("decompress", decompress_cost)],
                            tag: String::new(),
                        },
                    );
                },
            )
            .expect("mapped chunk extent readable");
        }
    }

    fn describe(&self) -> String {
        format!(
            "scidp://{}#{}[{:?}+{:?}]",
            self.pfs_path, self.var.name, self.start, self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce::Cluster;
    use pfs::PfsConfig;
    use scifmt::{Array, Codec, SncBuilder, SncFile};
    use simnet::{ClusterSpec, CostModel};

    fn cluster() -> Cluster {
        let spec = ClusterSpec {
            compute_nodes: 2,
            storage_nodes: 1,
            osts: 4,
            ..ClusterSpec::default()
        };
        let pfs_cfg = PfsConfig {
            n_osts: 4,
            stripe_size: 256,
            default_stripe_count: 4,
        };
        // Zero metadata overheads so byte accounting is exact in tests.
        let cost = CostModel {
            seek_s: 0.0,
            rpc_s: 0.0,
            ..CostModel::default()
        };
        Cluster::new(spec, pfs_cfg, 1 << 20, 1, cost)
    }

    fn stage_var(c: &mut Cluster) -> (Arc<VarMeta>, usize, Array) {
        let data: Vec<f32> = (0..6 * 8 * 5).map(|i| i as f32 * 0.5).collect();
        let full = Array::from_f32(vec![6, 8, 5], data).unwrap();
        let mut b = SncBuilder::new();
        b.add_var(
            "",
            "QR",
            &[("lev", 6), ("lat", 8), ("lon", 5)],
            &[2, 8, 5],
            Codec::ShuffleLz { elem: 4 },
            full.clone(),
        )
        .unwrap();
        let bytes = b.finish();
        let f = SncFile::open(bytes.clone()).unwrap();
        let var = Arc::new(f.meta().var("QR").unwrap().clone());
        let off = f.meta().data_offset;
        c.pfs.borrow_mut().create("run/f.snc", bytes);
        (var, off, full)
    }

    #[test]
    fn fetch_assembles_exact_slab() {
        let mut c = cluster();
        let (var, off, full) = stage_var(&mut c);
        let fetcher = SciSlabFetcher {
            pfs_path: "run/f.snc".into(),
            var,
            data_offset: off,
            start: vec![1, 2, 0],
            count: vec![3, 4, 5],
        };
        let got: Rc<RefCell<Option<(TaskInput, Vec<(&'static str, f64)>)>>> =
            Rc::new(RefCell::new(None));
        let g = got.clone();
        let env = c.env();
        fetcher.fetch(
            &env,
            &mut c.sim,
            NodeId(0),
            Box::new(move |_, fr| {
                *g.borrow_mut() = Some((fr.input, fr.charges));
            }),
        );
        c.run();
        let (input, charges) = got.borrow_mut().take().unwrap();
        let TaskInput::Array(a) = input else {
            panic!("expected array");
        };
        assert_eq!(a.shape(), &[3, 4, 5]);
        for l in 0..3 {
            for i in 0..4 {
                for j in 0..5 {
                    assert_eq!(a.at(&[l, i, j]), full.at(&[1 + l, 2 + i, j]));
                }
            }
        }
        assert_eq!(charges.len(), 1);
        assert_eq!(charges[0].0, "decompress");
        assert!(charges[0].1 > 0.0);
    }

    #[test]
    fn chunk_aligned_slab_reads_only_its_chunks() {
        // A slab covering exactly chunk 1 (levels 2..4) must not read
        // chunks 0 or 2: admitted flow bytes stay well under the file size.
        let mut c = cluster();
        let (var, off, _) = stage_var(&mut c);
        let chunk1 = var.chunks[1].clen as f64;
        let fetcher = SciSlabFetcher {
            pfs_path: "run/f.snc".into(),
            var,
            data_offset: off,
            start: vec![2, 0, 0],
            count: vec![2, 8, 5],
        };
        let env = c.env();
        fetcher.fetch(&env, &mut c.sim, NodeId(1), Box::new(|_, _| {}));
        c.run();
        let admitted = c.sim.net.bytes_admitted;
        // Only the selected chunk's bytes may move (seeks zeroed above).
        assert!(
            admitted <= chunk1 + 1.0,
            "read amplification: admitted {admitted}, chunk {chunk1}"
        );
        assert!(admitted >= chunk1 * 0.99);
    }

    #[test]
    fn unaligned_slab_reads_extra_chunks() {
        // Levels 1..3 straddle chunks 0 and 1 → both chunks transferred.
        let mut c = cluster();
        let (var, off, full) = stage_var(&mut c);
        let two_chunks = (var.chunks[0].clen + var.chunks[1].clen) as f64;
        let fetcher = SciSlabFetcher {
            pfs_path: "run/f.snc".into(),
            var,
            data_offset: off,
            start: vec![1, 0, 0],
            count: vec![2, 8, 5],
        };
        let got = Rc::new(RefCell::new(None));
        let g = got.clone();
        let env = c.env();
        fetcher.fetch(
            &env,
            &mut c.sim,
            NodeId(0),
            Box::new(move |_, fr| {
                *g.borrow_mut() = Some(fr.input);
            }),
        );
        c.run();
        assert!(c.sim.net.bytes_admitted >= two_chunks * 0.9);
        // Assembly is still correct despite the misalignment.
        let Some(TaskInput::Array(a)) = got.borrow_mut().take() else {
            panic!()
        };
        assert_eq!(a.at(&[0, 0, 0]), full.at(&[1, 0, 0]));
    }
}
