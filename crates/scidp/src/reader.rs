//! PFS Reader: the in-task fetcher for scientific dummy blocks
//! (paper §III-A.3).
//!
//! Each map task spawns its own reader; the reader resolves its slab to the
//! intersecting compressed chunks, issues **one whole-extent read per
//! chunk** (SciDP "reads the entire block in a single I/O request to
//! maximize the bandwidth", vs. original Hadoop's 64 KB record reads), all
//! chunks in parallel, decompresses, and assembles the hyperslab into a
//! typed array. With many tasks running across nodes, many readers hit the
//! PFS concurrently — that aggregate parallel read is Figure 6's "SciDP"
//! series.

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, HashSet};
use std::rc::Rc;
use std::sync::Arc;

use mapreduce::counters::keys;
use mapreduce::{
    FetchDone, FetchPiece, FetchResult, MrEnv, MrError, PieceDone, PieceStream, SplitFetcher,
    StreamFallback, TaskInput,
};
use rframe::{MatchBound, Predicate};
use scifmt::hyperslab;
use scifmt::snc::{assemble_slab, chunk_extents_of, ChunkCache, SncFile, DEFAULT_CACHE_BYTES};
use scifmt::VarMeta;
use simnet::{NodeId, Sim};

use crate::pushdown::{assemble_frame, chunk_col_stats};

/// Events the chunk-integrity machinery recorded during one fetch.
#[derive(Default)]
struct IntegrityEvents {
    verified_bytes: u64,
    detected: u64,
    repaired: u64,
}

/// Completion of one verified chunk-extent read: the compressed frame, or
/// the error that kills this attempt.
type FrameDone = Box<dyn FnOnce(&mut Sim, Result<Vec<u8>, MrError>)>;

/// One chunk-extent read with end-to-end verification and repair.
struct ChunkRead {
    env: MrEnv,
    node: NodeId,
    pfs_path: Rc<String>,
    idx: usize,
    offset: u64,
    clen: u64,
    /// CRC-32C the SNC builder stored for this chunk's compressed frame.
    crc: u32,
    events: Rc<RefCell<IntegrityEvents>>,
    cache: Arc<ChunkCache>,
    file_key: u64,
    done: RefCell<Option<FrameDone>>,
}

/// Issue (or re-issue) the timed PFS read of a chunk extent, verifying the
/// delivered frame against the stored CRC. A mismatch is detected
/// corruption: the first one triggers exactly one re-read (a transient
/// flip repairs — the store is clean); a second mismatch quarantines the
/// chunk and fails the attempt with an `IntegrityError` rather than ever
/// decoding wrong bytes. Returns the synchronous error of the *initial*
/// `read_at` call so the caller can stop issuing sibling reads (re-read
/// errors are routed through `done` instead).
fn chunk_read_attempt(sim: &mut Sim, st: Rc<ChunkRead>, attempt: u32) -> Result<(), pfs::PfsError> {
    let st2 = st.clone();
    pfs::read_at(
        sim,
        &st.env.topo,
        &st.env.pfs,
        st.node,
        &st.pfs_path,
        st.offset as usize,
        st.clen as usize,
        move |sim, frame| {
            if scirng::crc32c(&frame) == st2.crc {
                {
                    let mut ev = st2.events.borrow_mut();
                    ev.verified_bytes += frame.len() as u64;
                    if attempt > 0 {
                        ev.repaired += 1;
                    }
                }
                if let Some(d) = st2.done.borrow_mut().take() {
                    d(sim, Ok(frame));
                }
                return;
            }
            st2.events.borrow_mut().detected += 1;
            if attempt == 0 {
                let st3 = st2.clone();
                if let Err(e) = chunk_read_attempt(sim, st3, 1) {
                    if let Some(d) = st2.done.borrow_mut().take() {
                        let e = MrError::msg(format!("pfs: {e} ({})", st2.pfs_path));
                        sim.after(0.0, move |sim| d(sim, Err(e)));
                    }
                }
            } else {
                st2.cache.quarantine((st2.file_key, st2.offset));
                // The cluster tier must never outlive the quarantine: purge
                // any resident copy on every node and block re-admission.
                st2.env.cluster_cache.quarantine((st2.file_key, st2.offset));
                if let Some(d) = st2.done.borrow_mut().take() {
                    let e = MrError::msg(format!(
                        "IntegrityError: chunk {} of {} failed crc32c verification twice; \
                         chunk quarantined",
                        st2.idx, st2.pfs_path
                    ));
                    sim.after(0.0, move |sim| d(sim, Err(e)));
                }
            }
        },
    )
}

/// Fetches one scientific dummy block (a variable hyperslab) from the PFS.
pub struct SciSlabFetcher {
    pub pfs_path: String,
    pub var: Arc<VarMeta>,
    /// Absolute offset of the container's data section.
    pub data_offset: usize,
    /// Element slab this block covers.
    pub start: Vec<usize>,
    pub count: Vec<usize>,
    /// Node-local decompressed-chunk cache shared by the job's fetchers.
    /// Chunks found here skip both the PFS read and the decompression
    /// charge (repeated overlapping hyperslabs of the same variable).
    pub cache: Arc<ChunkCache>,
    /// Pushdown predicate. When set, chunks whose zone maps prove no row
    /// can match are skipped before their PFS read is issued, and the
    /// result is delivered as the predicate-filtered coordinate+value
    /// frame ([`TaskInput::Frame`]) instead of the dense array.
    pub pushdown: Option<Arc<Predicate>>,
    /// Cluster-cache admission for this dataset, from the placement policy
    /// (see [`crate::placement`]): `None` = never admit (PFS-direct or
    /// HDFS-materialised datasets), `Some(pinned)` = admit decoded chunks,
    /// optionally pinned against LRU eviction. Lookups always happen when
    /// the tier is enabled — residual entries serve any dataset.
    pub cluster_admit: Option<bool>,
}

impl SplitFetcher for SciSlabFetcher {
    fn fetch(&self, env: &MrEnv, sim: &mut Sim, node: NodeId, done: FetchDone) {
        let shape = self.var.shape();
        let ids =
            hyperslab::chunks_for_slab(&shape, &self.var.chunk_shape, &self.start, &self.count);
        let extents = chunk_extents_of(&self.var, self.data_offset);
        // Consult the node-local cache first: chunks another task of this
        // job already decompressed need neither the PFS read nor the
        // decompression charge.
        let file_key = ChunkCache::file_key(&self.pfs_path);
        // Zone-map pruning is only meaningful for real (rank >= 1) arrays;
        // a rank-0 variable keeps the dense path even under pushdown.
        let plan = if shape.is_empty() {
            None
        } else {
            self.pushdown.clone()
        };
        let grid = hyperslab::chunk_grid(&shape, &self.var.chunk_shape);
        let dims: Vec<String> = self.var.dims.iter().map(|d| d.name.clone()).collect();
        let collected: Rc<RefCell<HashMap<usize, Arc<Vec<u8>>>>> =
            Rc::new(RefCell::new(HashMap::new()));
        let mut needed: Vec<(usize, u64, u64, u64, u32)> = Vec::new();
        let mut skipped: HashSet<usize> = HashSet::new();
        let mut skipped_bytes = 0u64;
        let cluster_on = env.cluster_cache.enabled();
        let mut cluster_hits = 0usize;
        let mut cluster_misses = 0usize;
        // Raw (decompressed) bytes served from the cluster tier — charged
        // at memory speed — and compressed bytes whose PFS reads that
        // avoided.
        let mut cluster_hit_raw = 0u64;
        let mut cluster_avoided = 0u64;
        for &i in &ids {
            let ext = match extents.get(i) {
                Some(e) => e,
                None => {
                    // chunks_for_slab only yields ids inside the chunk
                    // grid; an out-of-range id means the header and the
                    // grid disagree — fail the read, don't drop data.
                    let e =
                        MrError::msg(format!("chunk id {i} out of range for {}", self.pfs_path));
                    sim.after(0.0, move |sim| done(sim, Err(e)));
                    return;
                }
            };
            if self.cache.is_quarantined((file_key, ext.offset)) {
                // A prior fetch proved this chunk unreadable (two CRC
                // failures); fail fast instead of re-reading known-bad
                // data. This stays ahead of zone-map pruning so known-bad
                // chunks fail identically with and without pushdown.
                let e = MrError::msg(format!(
                    "IntegrityError: chunk {i} of {} is quarantined",
                    self.pfs_path
                ));
                sim.after(0.0, move |sim| done(sim, Err(e)));
                return;
            }
            if let Some(pred) = &plan {
                // Prune before the cache lookup and before any PFS read:
                // a chunk whose zone map proves the predicate false for
                // every row contributes nothing to the filtered frame.
                let coords = hyperslab::unrank(&grid, i);
                let origin = hyperslab::chunk_origin(&coords, &self.var.chunk_shape);
                let cdim = hyperslab::chunk_shape_at(&coords, &self.var.chunk_shape, &shape);
                let elems: usize = cdim.iter().product();
                if let Some((is, ic)) =
                    hyperslab::intersect(&origin, &cdim, &self.start, &self.count)
                {
                    let stats = |col: &str| {
                        chunk_col_stats(&dims, &is, &ic, ext.zone.as_ref(), elems as u64, col)
                    };
                    if pred.prune(&stats) == MatchBound::None {
                        skipped.insert(i);
                        skipped_bytes += ext.clen;
                        continue;
                    }
                }
            }
            match self.cache.lookup((file_key, ext.offset)) {
                Some(raw) => {
                    collected.borrow_mut().insert(i, raw);
                }
                // Job-cache miss: consult the cluster tier. Only residency
                // on the *executing* node is a hit (remote holders steer
                // the scheduler, they don't serve data).
                None => match env.cluster_cache.lookup(node, (file_key, ext.offset)) {
                    Some(raw) => {
                        // Seed the job cache so sibling fetchers of this
                        // job hit without another registry round.
                        self.cache.insert((file_key, ext.offset), raw.clone());
                        collected.borrow_mut().insert(i, raw);
                        cluster_hits += 1;
                        cluster_hit_raw += ext.rlen;
                        cluster_avoided += ext.clen;
                    }
                    None => {
                        if cluster_on {
                            cluster_misses += 1;
                        }
                        needed.push((i, ext.offset, ext.clen, ext.rlen, ext.crc));
                    }
                },
            }
        }
        let hits = ids.len() - needed.len() - skipped.len() - cluster_hits;
        let cluster_hit_cost = sim.cost.cache_hit(cluster_hit_raw as usize);
        // Counter block shared by the all-cached and read paths: the
        // cluster-tier counters only exist when the tier is live, so every
        // existing workload's counter set is unchanged.
        let cluster_counters = move || {
            let mut c: Vec<(&'static str, f64)> = Vec::new();
            if cluster_on {
                c.push((keys::CLUSTER_CACHE_HITS, cluster_hits as f64));
                c.push((keys::CLUSTER_CACHE_MISSES, cluster_misses as f64));
                if cluster_avoided > 0 {
                    c.push((keys::PFS_BYTES_AVOIDED, cluster_avoided as f64));
                }
            }
            c
        };
        let misses = needed.len();
        let var = self.var.clone();
        let start = self.start.clone();
        let count = self.count.clone();
        // Decompression is only paid for the chunks not served from cache.
        let missed_raw: u64 = needed.iter().map(|&(_, _, _, r, _)| r).sum();
        let decompress_cost = sim.cost.decompress(missed_raw as usize);

        // Assembly: dense array without pushdown; with pushdown, the
        // surviving chunks go straight into the slab's coordinate+value
        // columns and the predicate filter is applied vectorised, with the
        // pushdown counters rendered alongside.
        type Assembled = (TaskInput, Vec<(&'static str, f64)>);
        type AssembleFn = Rc<dyn Fn(&HashMap<usize, Arc<Vec<u8>>>) -> Result<Assembled, MrError>>;
        let assemble: AssembleFn = {
            let n_skipped = skipped.len();
            Rc::new(move |chunks: &HashMap<usize, Arc<Vec<u8>>>| match &plan {
                Some(pred) => {
                    let frame = assemble_frame(&var, &dims, &start, &count, chunks, &skipped)
                        .map_err(|e| MrError::msg(format!("snc pushdown assembly: {e}")))?;
                    let rows = frame.n_rows();
                    let mask = pred
                        .eval_mask(&frame)
                        .map_err(|e| MrError::msg(format!("pushdown predicate: {e}")))?;
                    let frame = frame
                        .filter(&mask)
                        .map_err(|e| MrError::msg(format!("pushdown filter: {e}")))?;
                    Ok((
                        TaskInput::Frame(frame),
                        vec![
                            (keys::CHUNKS_SKIPPED_ZONEMAP, n_skipped as f64),
                            (keys::PUSHDOWN_BYTES_AVOIDED, skipped_bytes as f64),
                            (keys::VECTORISED_ROWS, rows as f64),
                        ],
                    ))
                }
                None => assemble_slab(&var, &start, &count, |i| {
                    chunks
                        .get(&i)
                        .map(|a| a.as_slice())
                        .ok_or_else(|| scifmt::FmtError::NotFound(format!("chunk {i}")))
                })
                .map(|a| (TaskInput::Array(a), Vec::new()))
                .map_err(|e| MrError::msg(format!("snc slab assembly: {e}"))),
            })
        };

        if needed.is_empty() {
            // Everything (possibly nothing) came from the cache — or was
            // pruned away. Cluster hits pay the node-local memory-copy
            // charge instead of a PFS read.
            let result = assemble(&collected.borrow()).map(|(input, extra)| {
                let mut counters = vec![(keys::CHUNK_CACHE_HITS, hits as f64)];
                counters.extend(cluster_counters());
                counters.extend(extra);
                let mut charges: Vec<(&'static str, f64)> = Vec::new();
                if cluster_hits > 0 {
                    charges.push(("cache_read", cluster_hit_cost));
                }
                FetchResult {
                    input,
                    charges,
                    counters,
                    tag: String::new(),
                }
            });
            sim.after(0.0, move |sim| done(sim, result));
            return;
        }

        // Fetch the remaining chunk extents in parallel — each behind the
        // verify/repair machine — then decode + assemble when the last one
        // lands.
        let remaining = Rc::new(RefCell::new(needed.len()));
        let done_cell = Rc::new(RefCell::new(Some(done)));
        let decode_s = Rc::new(RefCell::new(0.0f64));
        let events = Rc::new(RefCell::new(IntegrityEvents::default()));
        let path = Rc::new(self.pfs_path.clone());
        let cluster_admit = self.cluster_admit;
        for (idx, offset, clen, _rlen, crc) in needed {
            let collected = collected.clone();
            let remaining = remaining.clone();
            let dc = done_cell.clone();
            let decode_s = decode_s.clone();
            let events2 = events.clone();
            let cache = self.cache.clone();
            let assemble = assemble.clone();
            let envc = env.clone();
            let frame_done: FrameDone = Box::new(move |sim, frame| {
                let frame = match frame {
                    Ok(frame) => frame,
                    Err(e) => {
                        // Verification exhausted its re-read (or the re-read
                        // itself failed): kill this attempt once.
                        if let Some(d) = dc.borrow_mut().take() {
                            d(sim, Err(e));
                        }
                        return;
                    }
                };
                // Real decode of the real (now verified) chunk bytes, timed
                // for the Fig. 7 Read/Convert decomposition.
                // scilint::allow(d-wallclock, reason = "measures real host decompress cost for the Fig. 7 diagnostic; never feeds back into virtual time")
                let t0 = std::time::Instant::now();
                let raw = match scifmt::codec::decompress(&frame) {
                    Ok(raw) => raw,
                    Err(e) => {
                        if let Some(d) = dc.borrow_mut().take() {
                            d(
                                sim,
                                Err(MrError::msg(format!("snc chunk {idx} decode: {e:?}"))),
                            );
                        }
                        return;
                    }
                };
                *decode_s.borrow_mut() += t0.elapsed().as_secs_f64();
                let raw = Arc::new(raw);
                cache.insert((file_key, offset), raw.clone());
                // Placement-gated cluster admission: the decoded (verified)
                // chunk becomes node-local for every later job/stage. The
                // registry itself refuses quarantined or oversized entries
                // and no-ops while the tier is disabled.
                if let Some(pinned) = cluster_admit {
                    envc.cluster_cache
                        .insert(node, (file_key, offset), raw.clone(), pinned);
                }
                collected.borrow_mut().insert(idx, raw);
                let mut rem = remaining.borrow_mut();
                *rem -= 1;
                if *rem > 0 {
                    return;
                }
                drop(rem);
                // A sibling chunk may have failed this fetch already.
                let Some(d) = dc.borrow_mut().take() else {
                    return;
                };
                let chunks = std::mem::take(&mut *collected.borrow_mut());
                let (input, extra) = match assemble(&chunks) {
                    Ok(out) => out,
                    Err(e) => {
                        d(sim, Err(e));
                        return;
                    }
                };
                let mut counters = vec![
                    (keys::CHUNK_CACHE_HITS, hits as f64),
                    (keys::CHUNK_CACHE_MISSES, misses as f64),
                    (keys::CODEC_DECODE_S, *decode_s.borrow()),
                ];
                let ev = events2.borrow();
                if ev.verified_bytes > 0 {
                    counters.push((keys::CHECKSUM_VERIFIED_BYTES, ev.verified_bytes as f64));
                }
                if ev.detected > 0 {
                    counters.push((keys::CORRUPTION_DETECTED, ev.detected as f64));
                }
                if ev.repaired > 0 {
                    counters.push((keys::CORRUPTION_REPAIRED, ev.repaired as f64));
                }
                drop(ev);
                counters.extend(cluster_counters());
                counters.extend(extra);
                let mut charges = vec![("decompress", decompress_cost)];
                if cluster_hits > 0 {
                    charges.push(("cache_read", cluster_hit_cost));
                }
                d(
                    sim,
                    Ok(FetchResult {
                        input,
                        charges,
                        counters,
                        tag: String::new(),
                    }),
                );
            });
            let st = Rc::new(ChunkRead {
                env: env.clone(),
                node,
                pfs_path: path.clone(),
                idx,
                offset,
                clen,
                crc,
                events: events.clone(),
                cache: self.cache.clone(),
                file_key,
                done: RefCell::new(Some(frame_done)),
            });
            if let Err(e) = chunk_read_attempt(sim, st, 0) {
                // Injected or genuine PFS error: fail the attempt (once) and
                // stop issuing the remaining chunk reads.
                if let Some(d) = done_cell.borrow_mut().take() {
                    let e = MrError::msg(format!("pfs: {e} ({})", self.pfs_path));
                    sim.after(0.0, move |sim| d(sim, Err(e)));
                }
                return;
            }
        }
    }

    fn open_stream(
        &self,
        env: &MrEnv,
        sim: &mut Sim,
        node: NodeId,
    ) -> Result<Box<dyn PieceStream>, StreamFallback> {
        if self.pushdown.is_some() {
            // Pushdown delivers a filtered frame, not a dense array; the
            // piece-streaming overlap path only knows how to assemble the
            // latter, so fall back to the batch fetch. The typed reason
            // surfaces in the job's `stream_fallbacks` counters instead of
            // silently losing the overlap pipeline.
            return Err(StreamFallback::Pushdown);
        }
        let shape = self.var.shape();
        let ids =
            hyperslab::chunks_for_slab(&shape, &self.var.chunk_shape, &self.start, &self.count);
        let extents = chunk_extents_of(&self.var, self.data_offset);
        let file_key = ChunkCache::file_key(&self.pfs_path);
        let collected: Rc<RefCell<HashMap<usize, Arc<Vec<u8>>>>> =
            Rc::new(RefCell::new(HashMap::new()));
        let mut pieces = Vec::new();
        let mut hits = 0usize;
        let cluster_on = env.cluster_cache.enabled();
        let mut cluster_hits = 0usize;
        let mut cluster_misses = 0usize;
        let mut cluster_hit_raw = 0u64;
        let mut cluster_avoided = 0u64;
        for &i in &ids {
            let ext = match extents.get(i) {
                Some(e) => e,
                None => {
                    // Header/grid disagreement (cannot come out of
                    // chunks_for_slab): fail the attempt at issue time
                    // like a quarantined chunk rather than drop data.
                    pieces.insert(0, SlabPiece::Quarantined(i));
                    continue;
                }
            };
            if self.cache.is_quarantined((file_key, ext.offset)) {
                // Known-bad chunk: deliver it as a piece that fails at
                // issue time, so the attempt dies with the same typed
                // error the batch path fast-fails with. Quarantined pieces
                // sort first so the failure fires before real reads land.
                pieces.insert(0, SlabPiece::Quarantined(i));
                continue;
            }
            match self.cache.lookup((file_key, ext.offset)) {
                Some(raw) => {
                    collected.borrow_mut().insert(i, raw);
                    hits += 1;
                }
                // Job-cache miss: a node-local cluster-tier copy turns the
                // piece into a zero-read open-time hit, exactly like the
                // batch path.
                None => match env.cluster_cache.lookup(node, (file_key, ext.offset)) {
                    Some(raw) => {
                        self.cache.insert((file_key, ext.offset), raw.clone());
                        collected.borrow_mut().insert(i, raw);
                        cluster_hits += 1;
                        cluster_hit_raw += ext.rlen;
                        cluster_avoided += ext.clen;
                    }
                    None => {
                        if cluster_on {
                            cluster_misses += 1;
                        }
                        pieces.push(SlabPiece::Read {
                            idx: i,
                            offset: ext.offset,
                            clen: ext.clen,
                            rlen: ext.rlen,
                            crc: ext.crc,
                        });
                    }
                },
            }
        }
        Ok(Box::new(SlabPieceStream {
            pfs_path: Rc::new(self.pfs_path.clone()),
            var: self.var.clone(),
            start: self.start.clone(),
            count: self.count.clone(),
            cache: self.cache.clone(),
            file_key,
            hits,
            cluster_on,
            cluster_admit: self.cluster_admit,
            cluster_hits,
            cluster_misses,
            cluster_avoided,
            // `finish()` has no `Sim` handle, so the memory-copy charge for
            // the open-time cluster hits is priced here.
            cluster_hit_cost: sim.cost.cache_hit(cluster_hit_raw as usize),
            pieces,
            collected,
        }))
    }

    fn cache_hints(&self) -> Vec<simnet::ChunkKey> {
        // The chunk keys this split will ask the cluster tier for — the
        // scheduler probes these against each node's registry shard to
        // place the map cache-local. Only computed when the tier is live
        // (the driver skips the call otherwise).
        let shape = self.var.shape();
        let ids =
            hyperslab::chunks_for_slab(&shape, &self.var.chunk_shape, &self.start, &self.count);
        let extents = chunk_extents_of(&self.var, self.data_offset);
        let file_key = ChunkCache::file_key(&self.pfs_path);
        ids.iter()
            .filter_map(|&i| extents.get(i).map(|e| (file_key, e.offset)))
            .collect()
    }

    fn describe(&self) -> String {
        format!(
            "scidp://{}#{}[{:?}+{:?}]",
            self.pfs_path, self.var.name, self.start, self.count
        )
    }
}

/// One piece of a streaming slab fetch.
#[derive(Clone, Copy)]
enum SlabPiece {
    /// Chunk quarantined by a prior fetch — fails the attempt at issue
    /// time with zero PFS traffic, like the batch fast-fail.
    Quarantined(usize),
    /// A cache-miss chunk: `(idx, offset, clen, rlen, crc)` read through
    /// the verify/repair machine, decoded and cached on arrival.
    Read {
        idx: usize,
        offset: u64,
        clen: u64,
        rlen: u64,
        crc: u32,
    },
}

/// Streaming view of a [`SciSlabFetcher`]: one piece per cache-miss chunk
/// (cache hits are collected at open and cost nothing). Each piece runs
/// the same CRC verify → re-read repair → quarantine machine as the batch
/// path, decodes its chunk on arrival (that is the per-piece compute the
/// driver overlaps with later reads), and [`PieceStream::finish`]
/// assembles the identical hyperslab.
struct SlabPieceStream {
    pfs_path: Rc<String>,
    var: Arc<VarMeta>,
    start: Vec<usize>,
    count: Vec<usize>,
    cache: Arc<ChunkCache>,
    file_key: u64,
    hits: usize,
    /// Whether the cluster tier was live at open (gates counter emission).
    cluster_on: bool,
    cluster_admit: Option<bool>,
    cluster_hits: usize,
    cluster_misses: usize,
    cluster_avoided: u64,
    cluster_hit_cost: f64,
    pieces: Vec<SlabPiece>,
    collected: Rc<RefCell<HashMap<usize, Arc<Vec<u8>>>>>,
}

impl PieceStream for SlabPieceStream {
    fn n_pieces(&self) -> usize {
        self.pieces.len()
    }

    fn fetch_piece(&self, env: &MrEnv, sim: &mut Sim, node: NodeId, piece: usize, done: PieceDone) {
        let (idx, offset, clen, rlen, crc) = match self.pieces.get(piece).copied() {
            None => {
                // The piece scheduler only issues indices < n_pieces().
                let e = MrError::msg(format!("piece {piece} out of range"));
                sim.after(0.0, move |sim| done(sim, Err(e)));
                return;
            }
            Some(SlabPiece::Quarantined(i)) => {
                let e = MrError::msg(format!(
                    "IntegrityError: chunk {i} of {} is quarantined",
                    self.pfs_path
                ));
                sim.after(0.0, move |sim| done(sim, Err(e)));
                return;
            }
            Some(SlabPiece::Read {
                idx,
                offset,
                clen,
                rlen,
                crc,
            }) => (idx, offset, clen, rlen, crc),
        };
        // Per-piece event cell: the counters this piece reports are the
        // integrity deltas of just this chunk's read(s).
        let events = Rc::new(RefCell::new(IntegrityEvents::default()));
        let decompress_cost = sim.cost.decompress(rlen as usize);
        let collected = self.collected.clone();
        let cache = self.cache.clone();
        let file_key = self.file_key;
        let cluster_admit = self.cluster_admit;
        let envc = env.clone();
        let done_cell = Rc::new(RefCell::new(Some(done)));
        let dc = done_cell.clone();
        let events2 = events.clone();
        let frame_done: FrameDone = Box::new(move |sim, frame| {
            let Some(done) = dc.borrow_mut().take() else {
                return;
            };
            let frame = match frame {
                Ok(frame) => frame,
                Err(e) => {
                    done(sim, Err(e));
                    return;
                }
            };
            // Real decode of the real (verified) chunk bytes, timed for
            // the Fig. 7 Read/Convert decomposition.
            // scilint::allow(d-wallclock, reason = "measures real host decompress cost for the Fig. 7 diagnostic; never feeds back into virtual time")
            let t0 = std::time::Instant::now();
            let raw = match scifmt::codec::decompress(&frame) {
                Ok(raw) => raw,
                Err(e) => {
                    done(
                        sim,
                        Err(MrError::msg(format!("snc chunk {idx} decode: {e:?}"))),
                    );
                    return;
                }
            };
            let decode_s = t0.elapsed().as_secs_f64();
            let raw = Arc::new(raw);
            cache.insert((file_key, offset), raw.clone());
            // Same placement-gated admission as the batch path: the piece's
            // decoded chunk becomes node-local cluster state on arrival.
            if let Some(pinned) = cluster_admit {
                envc.cluster_cache
                    .insert(node, (file_key, offset), raw.clone(), pinned);
            }
            collected.borrow_mut().insert(idx, raw);
            let mut counters = vec![
                (keys::CHUNK_CACHE_MISSES, 1.0),
                (keys::CODEC_DECODE_S, decode_s),
            ];
            let ev = events2.borrow();
            if ev.verified_bytes > 0 {
                counters.push((keys::CHECKSUM_VERIFIED_BYTES, ev.verified_bytes as f64));
            }
            if ev.detected > 0 {
                counters.push((keys::CORRUPTION_DETECTED, ev.detected as f64));
            }
            if ev.repaired > 0 {
                counters.push((keys::CORRUPTION_REPAIRED, ev.repaired as f64));
            }
            drop(ev);
            done(
                sim,
                Ok(FetchPiece {
                    bytes: rlen,
                    charges: vec![("decompress", decompress_cost)],
                    counters,
                }),
            );
        });
        let st = Rc::new(ChunkRead {
            env: env.clone(),
            node,
            pfs_path: self.pfs_path.clone(),
            idx,
            offset,
            clen,
            crc,
            events,
            cache: self.cache.clone(),
            file_key,
            done: RefCell::new(Some(frame_done)),
        });
        if let Err(e) = chunk_read_attempt(sim, st, 0) {
            if let Some(done) = done_cell.borrow_mut().take() {
                let e = MrError::msg(format!("pfs: {e} ({})", self.pfs_path));
                sim.after(0.0, move |sim| done(sim, Err(e)));
            }
        }
    }

    fn finish(&self) -> Result<FetchResult, MrError> {
        let chunks = std::mem::take(&mut *self.collected.borrow_mut());
        let array = assemble_slab(&self.var, &self.start, &self.count, |i| {
            chunks
                .get(&i)
                .map(|a| a.as_slice())
                .ok_or_else(|| scifmt::FmtError::NotFound(format!("chunk {i}")))
        })
        .map_err(|e| MrError::msg(format!("snc slab assembly: {e}")))?;
        let mut counters = if self.hits > 0 {
            vec![(keys::CHUNK_CACHE_HITS, self.hits as f64)]
        } else {
            Vec::new()
        };
        if self.cluster_on {
            counters.push((keys::CLUSTER_CACHE_HITS, self.cluster_hits as f64));
            counters.push((keys::CLUSTER_CACHE_MISSES, self.cluster_misses as f64));
            if self.cluster_avoided > 0 {
                counters.push((keys::PFS_BYTES_AVOIDED, self.cluster_avoided as f64));
            }
        }
        let charges = if self.cluster_hits > 0 {
            vec![("cache_read", self.cluster_hit_cost)]
        } else {
            vec![]
        };
        Ok(FetchResult {
            input: TaskInput::Array(array),
            charges,
            counters,
            tag: String::new(),
        })
    }
}

/// A reader session: every [`SncFile`] opened through it shares ONE
/// content-keyed decompressed-chunk cache, instead of each open allocating
/// its own private [`DEFAULT_CACHE_BYTES`] cache. A converter or scan that
/// walks hundreds of files therefore holds `capacity` bytes of chunk
/// memory total — not `capacity × files` — and repeated chunks of the
/// *same* file opened twice actually hit (keys are content-derived, so a
/// re-open maps onto the already-resident entries).
pub struct ReaderSession {
    cache: Arc<ChunkCache>,
    files_opened: Cell<usize>,
}

impl Default for ReaderSession {
    /// A session with the per-file default capacity — now shared by every
    /// file instead of multiplied by them.
    fn default() -> ReaderSession {
        ReaderSession::new(DEFAULT_CACHE_BYTES)
    }
}

impl ReaderSession {
    pub fn new(cache_bytes: usize) -> ReaderSession {
        ReaderSession {
            cache: Arc::new(ChunkCache::new(cache_bytes)),
            files_opened: Cell::new(0),
        }
    }

    /// Open an SNC container backed by the session-shared cache.
    pub fn open(&self, bytes: impl Into<Arc<Vec<u8>>>) -> scifmt::Result<SncFile> {
        self.files_opened.set(self.files_opened.get() + 1);
        Ok(SncFile::open(bytes)?.with_cache(self.cache.clone()))
    }

    /// The shared cache (e.g. to hand to [`SciSlabFetcher`]s directly).
    pub fn cache(&self) -> &Arc<ChunkCache> {
        &self.cache
    }

    pub fn files_opened(&self) -> usize {
        self.files_opened.get()
    }

    /// The session's chunk-memory bound. This is the *effective* capacity
    /// no matter how many files are opened — report it once, not per file.
    pub fn effective_capacity(&self) -> usize {
        self.cache.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce::Cluster;
    use pfs::PfsConfig;
    use scifmt::{Array, Codec, SncBuilder, SncFile};
    use simnet::{ClusterSpec, CostModel};

    fn cluster() -> Cluster {
        let spec = ClusterSpec {
            compute_nodes: 2,
            storage_nodes: 1,
            osts: 4,
            ..ClusterSpec::default()
        };
        let pfs_cfg = PfsConfig {
            n_osts: 4,
            stripe_size: 256,
            default_stripe_count: 4,
        };
        // Zero metadata overheads so byte accounting is exact in tests.
        let cost = CostModel {
            seek_s: 0.0,
            rpc_s: 0.0,
            ..CostModel::default()
        };
        Cluster::new(spec, pfs_cfg, 1 << 20, 1, cost)
    }

    fn stage_var(c: &mut Cluster) -> (Arc<VarMeta>, usize, Array) {
        let data: Vec<f32> = (0..6 * 8 * 5).map(|i| i as f32 * 0.5).collect();
        let full = Array::from_f32(vec![6, 8, 5], data).unwrap();
        let mut b = SncBuilder::new();
        b.add_var(
            "",
            "QR",
            &[("lev", 6), ("lat", 8), ("lon", 5)],
            &[2, 8, 5],
            Codec::ShuffleLz { elem: 4 },
            full.clone(),
        )
        .unwrap();
        let bytes = b.finish();
        let f = SncFile::open(bytes.clone()).unwrap();
        let var = Arc::new(f.meta().var("QR").unwrap().clone());
        let off = f.meta().data_offset;
        c.pfs.borrow_mut().create("run/f.snc", bytes);
        (var, off, full)
    }

    #[test]
    fn reader_session_shares_one_cache_across_files() {
        // Two distinct containers opened through one session share a single
        // pool; re-opening the same container maps onto already-resident
        // entries (keys are content-derived).
        let build = |seed: f32| {
            let data: Vec<f32> = (0..2 * 4 * 3).map(|i| i as f32 + seed).collect();
            let full = Array::from_f32(vec![2, 4, 3], data).unwrap();
            let mut b = SncBuilder::new();
            b.add_var(
                "",
                "QR",
                &[("lev", 2), ("lat", 4), ("lon", 3)],
                &[2, 4, 3],
                Codec::ShuffleLz { elem: 4 },
                full,
            )
            .unwrap();
            b.finish()
        };
        let (b1, b2) = (build(0.0), build(100.0));
        let session = ReaderSession::new(1 << 20);
        let f1 = session.open(b1.clone()).unwrap();
        let f2 = session.open(b2).unwrap();
        assert!(Arc::ptr_eq(f1.cache(), f2.cache()), "one pool, two files");
        assert_eq!(session.files_opened(), 2);
        // Capacity is the session's bound, not capacity × files.
        assert_eq!(session.effective_capacity(), 1 << 20);
        f1.get_vara("QR", &[0, 0, 0], &[2, 4, 3]).unwrap();
        f2.get_vara("QR", &[0, 0, 0], &[2, 4, 3]).unwrap();
        let after_two = session.cache().stats().misses;
        assert!(after_two >= 2, "each file decoded its own chunk");
        // Re-open file 1: same content → same keys → pure hits.
        let f1b = session.open(b1).unwrap();
        f1b.get_vara("QR", &[0, 0, 0], &[2, 4, 3]).unwrap();
        assert_eq!(session.cache().stats().misses, after_two);
        assert_eq!(session.files_opened(), 3);
    }

    #[test]
    fn fetch_assembles_exact_slab() {
        let mut c = cluster();
        let (var, off, full) = stage_var(&mut c);
        let fetcher = SciSlabFetcher {
            pfs_path: "run/f.snc".into(),
            var,
            data_offset: off,
            start: vec![1, 2, 0],
            count: vec![3, 4, 5],
            cache: Arc::new(ChunkCache::new(0)),
            pushdown: None,
            cluster_admit: None,
        };
        #[allow(clippy::type_complexity)]
        let got: Rc<RefCell<Option<(TaskInput, Vec<(&'static str, f64)>)>>> =
            Rc::new(RefCell::new(None));
        let g = got.clone();
        let env = c.env();
        fetcher.fetch(
            &env,
            &mut c.sim,
            NodeId(0),
            Box::new(move |_, fr| {
                let fr = fr.unwrap();
                *g.borrow_mut() = Some((fr.input, fr.charges));
            }),
        );
        c.run();
        let (input, charges) = got.borrow_mut().take().unwrap();
        let TaskInput::Array(a) = input else {
            panic!("expected array");
        };
        assert_eq!(a.shape(), &[3, 4, 5]);
        for l in 0..3 {
            for i in 0..4 {
                for j in 0..5 {
                    assert_eq!(a.at(&[l, i, j]), full.at(&[1 + l, 2 + i, j]));
                }
            }
        }
        assert_eq!(charges.len(), 1);
        assert_eq!(charges[0].0, "decompress");
        assert!(charges[0].1 > 0.0);
    }

    #[test]
    fn chunk_aligned_slab_reads_only_its_chunks() {
        // A slab covering exactly chunk 1 (levels 2..4) must not read
        // chunks 0 or 2: admitted flow bytes stay well under the file size.
        let mut c = cluster();
        let (var, off, _) = stage_var(&mut c);
        let chunk1 = var.chunks[1].clen as f64;
        let fetcher = SciSlabFetcher {
            pfs_path: "run/f.snc".into(),
            var,
            data_offset: off,
            start: vec![2, 0, 0],
            count: vec![2, 8, 5],
            cache: Arc::new(ChunkCache::new(0)),
            pushdown: None,
            cluster_admit: None,
        };
        let env = c.env();
        fetcher.fetch(&env, &mut c.sim, NodeId(1), Box::new(|_, _| {}));
        c.run();
        let admitted = c.sim.net.bytes_admitted;
        // Only the selected chunk's bytes may move (seeks zeroed above).
        assert!(
            admitted <= chunk1 + 1.0,
            "read amplification: admitted {admitted}, chunk {chunk1}"
        );
        assert!(admitted >= chunk1 * 0.99);
    }

    #[test]
    fn shared_cache_skips_repeat_reads() {
        // Two fetchers of the same job share a cache: the second fetch of an
        // overlapping slab moves zero PFS bytes, charges no decompression,
        // and reports the hits through the fetch counters.
        let mut c = cluster();
        let (var, off, full) = stage_var(&mut c);
        let cache = Arc::new(ChunkCache::default());
        let mk = |start: Vec<usize>, count: Vec<usize>| SciSlabFetcher {
            pfs_path: "run/f.snc".into(),
            var: var.clone(),
            data_offset: off,
            start,
            count,
            cache: cache.clone(),
            pushdown: None,
            cluster_admit: None,
        };
        let env = c.env();
        let first = mk(vec![0, 0, 0], vec![4, 8, 5]); // chunks 0 and 1
        first.fetch(&env, &mut c.sim, NodeId(0), Box::new(|_, _| {}));
        c.run();
        let bytes_after_first = c.sim.net.bytes_admitted;
        assert!(bytes_after_first > 0.0);

        let got = Rc::new(RefCell::new(None));
        let g = got.clone();
        let second = mk(vec![1, 0, 0], vec![2, 8, 5]); // same two chunks
        second.fetch(
            &env,
            &mut c.sim,
            NodeId(1),
            Box::new(move |_, fr| {
                *g.borrow_mut() = Some(fr);
            }),
        );
        c.run();
        assert_eq!(
            c.sim.net.bytes_admitted, bytes_after_first,
            "cached fetch must not touch the PFS"
        );
        let fr = got.borrow_mut().take().unwrap().unwrap();
        assert!(fr.charges.is_empty(), "no decompression charge on hits");
        assert_eq!(fr.counters, vec![(keys::CHUNK_CACHE_HITS, 2.0)]);
        let TaskInput::Array(a) = fr.input else {
            panic!("expected array");
        };
        assert_eq!(a.at(&[0, 0, 0]), full.at(&[1, 0, 0]));
        assert_eq!(a.at(&[1, 7, 4]), full.at(&[2, 7, 4]));
    }

    #[test]
    fn miss_fetch_reports_counters() {
        let mut c = cluster();
        let (var, off, _) = stage_var(&mut c);
        let fetcher = SciSlabFetcher {
            pfs_path: "run/f.snc".into(),
            var,
            data_offset: off,
            start: vec![0, 0, 0],
            count: vec![6, 8, 5],
            cache: Arc::new(ChunkCache::default()),
            pushdown: None,
            cluster_admit: None,
        };
        let got = Rc::new(RefCell::new(None));
        let g = got.clone();
        let env = c.env();
        fetcher.fetch(
            &env,
            &mut c.sim,
            NodeId(0),
            Box::new(move |_, fr| {
                *g.borrow_mut() = Some(fr.unwrap().counters);
            }),
        );
        c.run();
        let counters = got.borrow_mut().take().unwrap();
        assert_eq!(counters[0], (keys::CHUNK_CACHE_HITS, 0.0));
        assert_eq!(counters[1], (keys::CHUNK_CACHE_MISSES, 3.0));
        assert_eq!(counters[2].0, keys::CODEC_DECODE_S);
        assert!(counters[2].1 > 0.0, "real decode time was measured");
    }

    #[test]
    fn unaligned_slab_reads_extra_chunks() {
        // Levels 1..3 straddle chunks 0 and 1 → both chunks transferred.
        let mut c = cluster();
        let (var, off, full) = stage_var(&mut c);
        let two_chunks = (var.chunks[0].clen + var.chunks[1].clen) as f64;
        let fetcher = SciSlabFetcher {
            pfs_path: "run/f.snc".into(),
            var,
            data_offset: off,
            start: vec![1, 0, 0],
            count: vec![2, 8, 5],
            cache: Arc::new(ChunkCache::new(0)),
            pushdown: None,
            cluster_admit: None,
        };
        let got = Rc::new(RefCell::new(None));
        let g = got.clone();
        let env = c.env();
        fetcher.fetch(
            &env,
            &mut c.sim,
            NodeId(0),
            Box::new(move |_, fr| {
                *g.borrow_mut() = Some(fr.unwrap().input);
            }),
        );
        c.run();
        assert!(c.sim.net.bytes_admitted >= two_chunks * 0.9);
        // Assembly is still correct despite the misalignment.
        let Some(TaskInput::Array(a)) = got.borrow_mut().take() else {
            panic!()
        };
        assert_eq!(a.at(&[0, 0, 0]), full.at(&[1, 0, 0]));
    }

    #[test]
    fn transient_corruption_detected_and_repaired_by_reread() {
        // A silent flip on the first chunk read fails CRC verification; the
        // automatic re-read fetches clean bytes and the slab is delivered
        // bit-exact, with the events reported through the fetch counters.
        let mut c = cluster();
        let (var, off, full) = stage_var(&mut c);
        let chunk1 = var.chunks[1].clen as f64;
        c.sim
            .faults
            .install(simnet::FaultPlan::none().corrupt_read("run/f.snc", 1));
        let fetcher = SciSlabFetcher {
            pfs_path: "run/f.snc".into(),
            var,
            data_offset: off,
            start: vec![2, 0, 0],
            count: vec![2, 8, 5],
            cache: Arc::new(ChunkCache::new(0)),
            pushdown: None,
            cluster_admit: None,
        };
        let got = Rc::new(RefCell::new(None));
        let g = got.clone();
        let env = c.env();
        fetcher.fetch(
            &env,
            &mut c.sim,
            NodeId(0),
            Box::new(move |_, fr| {
                *g.borrow_mut() = Some(fr);
            }),
        );
        c.run();
        let fr = got.borrow_mut().take().unwrap().expect("repaired fetch");
        let TaskInput::Array(a) = fr.input else {
            panic!("expected array");
        };
        for i in 0..8 {
            for j in 0..5 {
                assert_eq!(a.at(&[0, i, j]), full.at(&[2, i, j]));
            }
        }
        let counters: HashMap<_, _> = fr.counters.iter().copied().collect();
        assert_eq!(counters[keys::CORRUPTION_DETECTED], 1.0);
        assert_eq!(counters[keys::CORRUPTION_REPAIRED], 1.0);
        assert_eq!(counters[keys::CHECKSUM_VERIFIED_BYTES], chunk1);
        // The repair really moved the chunk a second time.
        assert!(
            c.sim.net.bytes_admitted >= chunk1 * 1.9,
            "expected two transfers of the chunk, admitted {}",
            c.sim.net.bytes_admitted
        );
    }

    #[test]
    fn persistent_corruption_quarantines_instead_of_wrong_data() {
        // Media corruption survives the re-read: the fetch must fail with a
        // typed IntegrityError (never deliver wrong bytes), quarantine the
        // chunk, and later fetches must fail fast without touching the PFS.
        let mut c = cluster();
        let (var, off, _) = stage_var(&mut c);
        c.sim
            .faults
            .install(simnet::FaultPlan::none().corrupt_read_persistent("run/f.snc", 1));
        let cache = Arc::new(ChunkCache::default());
        let mk = || SciSlabFetcher {
            pfs_path: "run/f.snc".into(),
            var: var.clone(),
            data_offset: off,
            start: vec![2, 0, 0],
            count: vec![2, 8, 5],
            cache: cache.clone(),
            pushdown: None,
            cluster_admit: None,
        };
        let got = Rc::new(RefCell::new(None));
        let g = got.clone();
        let env = c.env();
        mk().fetch(
            &env,
            &mut c.sim,
            NodeId(0),
            Box::new(move |_, fr| {
                *g.borrow_mut() = Some(fr);
            }),
        );
        c.run();
        let err = match got.borrow_mut().take().unwrap() {
            Err(e) => e,
            Ok(_) => panic!("persistent corruption must fail the fetch"),
        };
        assert!(err.message().contains("IntegrityError"), "{err}");
        assert!(err.message().contains("quarantined"), "{err}");
        assert_eq!(cache.n_quarantined(), 1);

        // Second fetch: fast-fail on the quarantine list, zero PFS traffic.
        let bytes_before = c.sim.net.bytes_admitted;
        let got2 = Rc::new(RefCell::new(None));
        let g2 = got2.clone();
        mk().fetch(
            &env,
            &mut c.sim,
            NodeId(1),
            Box::new(move |_, fr| {
                *g2.borrow_mut() = Some(fr);
            }),
        );
        c.run();
        let err2 = match got2.borrow_mut().take().unwrap() {
            Err(e) => e,
            Ok(_) => panic!("quarantined chunk must fail the fetch"),
        };
        assert!(err2.message().contains("is quarantined"), "{err2}");
        assert_eq!(c.sim.net.bytes_admitted, bytes_before);
    }
}
