//! Materialise the dataset as SNC files on the PFS.

use pfs::Pfs;
use scifmt::{Array, Codec, SncBuilder, SncFile};

use crate::field::{field_rng, smooth_field, var_range};
use crate::model::{DatasetInfo, WrfSpec};

/// Generate the SNC container bytes of one timestamp file.
pub fn generate_file(spec: &WrfSpec, t: usize) -> Vec<u8> {
    let mut b = SncBuilder::new();
    b.attr(
        "",
        "model",
        scifmt::AttrValue::Str("NU-WRF (synthetic)".into()),
    );
    b.attr("", "timestamp", scifmt::AttrValue::I64(t as i64));
    b.attr(
        "",
        "resolution",
        scifmt::AttrValue::Str(format!(
            "{}x{}x{} (paper {}x{}x{})",
            spec.levels, spec.lat, spec.lon, spec.levels, spec.paper_lat, spec.paper_lon
        )),
    );
    let chunk = [spec.chunk_levels.min(spec.levels), spec.lat, spec.lon];
    // Every variable seeds its own RNG, so fields can be synthesized in
    // parallel without changing a single output byte.
    let names = spec.var_names();
    let fields =
        scifmt::par::par_map_indexed(names.len(), scifmt::par::default_threads(), 2, |vi| {
            let mut rng = field_rng(spec.seed, t, vi);
            let (base, amp) = var_range(vi);
            smooth_field(&mut rng, spec.levels, spec.lat, spec.lon, base, amp)
        });
    for (name, data) in names.iter().zip(fields) {
        let array = Array::from_f32(vec![spec.levels, spec.lat, spec.lon], data)
            .expect("generated shape consistent");
        b.add_var(
            "",
            name,
            &[("lev", spec.levels), ("lat", spec.lat), ("lon", spec.lon)],
            &chunk,
            Codec::ShuffleLz { elem: 4 },
            array,
        )
        .expect("variable construction is valid");
    }
    b.finish()
}

/// Generate the full dataset into `dir/` on the PFS (untimed — this stands
/// in for the MPI simulation phase the paper does not benchmark).
pub fn generate_dataset(pfs: &mut Pfs, spec: &WrfSpec, dir: &str) -> DatasetInfo {
    let mut files = Vec::with_capacity(spec.timestamps);
    let mut raw = 0usize;
    let mut stored = 0usize;
    for t in 0..spec.timestamps {
        let bytes = generate_file(spec, t);
        let f = SncFile::open(bytes.clone()).expect("generated file parses");
        for (_, v) in f.meta().all_vars() {
            raw += v.raw_size();
            stored += v.stored_size();
        }
        let path = format!("{dir}/{}", spec.file_name(t));
        pfs.create(path.clone(), bytes);
        files.push(path);
    }
    DatasetInfo {
        files,
        raw_bytes: raw,
        stored_bytes: stored,
        scale: spec.scale_factor(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfs::PfsConfig;
    use scifmt::snc::is_snc;

    #[test]
    fn generated_file_is_valid_snc() {
        let spec = WrfSpec::tiny(1);
        let bytes = generate_file(&spec, 0);
        assert!(is_snc(&bytes));
        let f = SncFile::open(bytes).unwrap();
        let vars = f.meta().all_vars();
        assert_eq!(vars.len(), 3);
        assert_eq!(vars[0].0, "QR");
        let qr = f.get_var("QR").unwrap();
        assert_eq!(qr.shape(), &[4, 8, 8]);
        // Chunked along levels: 4 levels / chunk 2 = 2 chunks.
        assert_eq!(f.meta().var("QR").unwrap().chunks.len(), 2);
    }

    #[test]
    fn dataset_lands_on_pfs_in_order() {
        let mut pfs = Pfs::new(PfsConfig::default());
        let spec = WrfSpec::tiny(3);
        let info = generate_dataset(&mut pfs, &spec, "nuwrf/run1");
        assert_eq!(info.files.len(), 3);
        assert_eq!(pfs.list("nuwrf/run1"), info.files);
        assert!(info.raw_bytes > 0);
        assert!(info.stored_bytes > 0);
        assert!(info.stored_bytes < info.raw_bytes);
    }

    #[test]
    fn deterministic_generation() {
        let spec = WrfSpec::tiny(1);
        assert_eq!(generate_file(&spec, 0), generate_file(&spec, 0));
        assert_ne!(generate_file(&spec, 0), generate_file(&spec, 1));
    }

    #[test]
    fn compression_ratio_is_paper_scale() {
        // Paper §IV-A: 298 MB raw → ~91 MB stored, ratio ≈ 3.27. Smooth
        // synthetic fields at a realistic grid should land in 2x–6x.
        let spec = WrfSpec {
            n_vars: 4,
            ..WrfSpec::scaled(64, 64, 1)
        };
        let mut pfs = Pfs::new(PfsConfig::default());
        let info = generate_dataset(&mut pfs, &spec, "d");
        let r = info.compression_ratio();
        assert!(r > 2.0, "ratio {r:.2} too low");
        assert!(r < 8.0, "ratio {r:.2} suspiciously high");
    }

    #[test]
    fn logical_sizes_scale() {
        let spec = WrfSpec {
            n_vars: 1,
            ..WrfSpec::scaled(125, 125, 1)
        };
        let mut pfs = Pfs::new(PfsConfig::default());
        let info = generate_dataset(&mut pfs, &spec, "d");
        assert_eq!(info.scale, 100.0);
        // Logical stored ≈ stored x 100.
        assert!((info.stored_bytes_logical() - info.stored_bytes as f64 * 100.0).abs() < 1.0);
    }
}
