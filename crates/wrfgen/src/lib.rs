//! # wrfgen — synthetic NU-WRF-shaped dataset generator
//!
//! The paper's evaluation data is a 48-hour NU-WRF run: one netCDF file per
//! timestamp, 23 single-precision variables of shape
//! `level x latitude x longitude` (50 x 1250 x 1250 low-res), chunked and
//! compressed with netCDF-4 (~298 MB raw → ~91 MB stored per variable).
//! Because 48 files were not enough, the authors *themselves* used a
//! synthetic generator to scale the dataset to 96–768 timestamps — we do
//! exactly the same, with one extra knob: a spatial scale-down so the real
//! bytes stay laptop-sized while the simulator charges paper-sized logical
//! bytes (`scale = paper elements / real elements`).
//!
//! Fields are smooth correlated noise (low-resolution noise, bilinearly
//! upsampled, mildly quantised like observational data), which gives the
//! byte-shuffle + LZ codec a realistic scientific-data compression ratio.

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod field;
pub mod model;
pub mod writer;

pub use model::{DatasetInfo, WrfSpec, VAR_NAMES};
pub use writer::{generate_dataset, generate_file};
