//! Smooth correlated field synthesis.
//!
//! Real geophysical fields are spatially correlated: neighbouring grid
//! points differ slightly, and float encodings share exponent/high-mantissa
//! bytes — which is exactly why netCDF-4's shuffle+deflate gets its ~3x
//! ratio on NU-WRF output. We synthesize such fields by bilinearly
//! upsampling a coarse noise grid (plus a vertical profile) and quantising
//! mildly, then verify the ratio instead of assuming it.

use scirng::Rng;

/// Deterministic per-(file, variable) RNG.
pub fn field_rng(seed: u64, timestamp: usize, var: usize) -> Rng {
    Rng::seed_from_u64(
        seed ^ (timestamp as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ (var as u64).wrapping_mul(0xc2b2_ae3d_27d4_eb4f),
    )
}

/// Generate one `levels x lat x lon` field, row-major.
///
/// `base`/`amp` set the physical value range (e.g. rainfall ≥ 0 around
/// `base = 0`, temperature around `base = 280`).
pub fn smooth_field(
    rng: &mut Rng,
    levels: usize,
    lat: usize,
    lon: usize,
    base: f32,
    amp: f32,
) -> Vec<f32> {
    assert!(levels > 0 && lat > 0 && lon > 0);
    // Coarse grid: ~1/8 resolution, at least 2 points for interpolation.
    let clat = (lat / 8).max(2);
    let clon = (lon / 8).max(2);
    let mut out = Vec::with_capacity(levels * lat * lon);
    // Coarse noise evolves slowly between levels (vertical correlation).
    let mut coarse: Vec<f32> = (0..clat * clon).map(|_| rng.range_f32(-1.0, 1.0)).collect();
    for lev in 0..levels {
        // Vertical profile: fields decay or grow with altitude.
        let profile = 1.0 - 0.8 * (lev as f32 / levels as f32);
        // Drift the coarse grid a little per level.
        for c in coarse.iter_mut() {
            *c = (*c * 0.9 + rng.range_f32(-0.1, 0.1)).clamp(-1.5, 1.5);
        }
        for i in 0..lat {
            // Map to coarse coordinates.
            let y = i as f32 / lat as f32 * (clat - 1) as f32;
            let y0 = y.floor() as usize;
            let y1 = (y0 + 1).min(clat - 1);
            let fy = y - y0 as f32;
            for j in 0..lon {
                let x = j as f32 / lon as f32 * (clon - 1) as f32;
                let x0 = x.floor() as usize;
                let x1 = (x0 + 1).min(clon - 1);
                let fx = x - x0 as f32;
                let v = coarse[y0 * clon + x0] * (1.0 - fy) * (1.0 - fx)
                    + coarse[y0 * clon + x1] * (1.0 - fy) * fx
                    + coarse[y1 * clon + x0] * fy * (1.0 - fx)
                    + coarse[y1 * clon + x1] * fy * fx;
                let val = base + amp * profile * v;
                // Mild quantisation (observational precision, ~6 significant bits of amplitude): zeroes the
                // low mantissa bits, like packing real model output.
                let q = (val * 64.0).round() / 64.0;
                out.push(q);
            }
        }
    }
    out
}

/// Per-variable physical ranges (index into [`crate::VAR_NAMES`]).
pub fn var_range(var_idx: usize) -> (f32, f32) {
    match var_idx {
        // Moisture species: non-negative, small.
        0..=5 => (2.0, 2.0),
        // Temperature-like.
        6 => (280.0, 15.0),
        // Winds.
        7..=9 => (0.0, 20.0),
        // Pressures.
        10 | 11 => (850.0, 120.0),
        // Geopotential.
        12 | 13 => (5000.0, 800.0),
        // Everything else: generic surface fields.
        _ => (100.0, 30.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = field_rng(1, 2, 3);
        let mut b = field_rng(1, 2, 3);
        let fa = smooth_field(&mut a, 3, 16, 16, 0.0, 1.0);
        let fb = smooth_field(&mut b, 3, 16, 16, 0.0, 1.0);
        assert_eq!(fa, fb);
        let mut c = field_rng(1, 2, 4);
        let fc = smooth_field(&mut c, 3, 16, 16, 0.0, 1.0);
        assert_ne!(fa, fc, "different variables differ");
    }

    #[test]
    fn values_in_physical_range() {
        let mut rng = field_rng(7, 0, 6);
        let (base, amp) = var_range(6);
        let f = smooth_field(&mut rng, 4, 32, 32, base, amp);
        for &v in &f {
            assert!(v > base - 3.0 * amp && v < base + 3.0 * amp, "{v}");
        }
    }

    #[test]
    fn field_is_spatially_smooth() {
        let mut rng = field_rng(7, 0, 0);
        let f = smooth_field(&mut rng, 1, 64, 64, 0.0, 10.0);
        // Neighbour deltas must be much smaller than the global range.
        let max = f.iter().cloned().fold(f32::MIN, f32::max);
        let min = f.iter().cloned().fold(f32::MAX, f32::min);
        let range = max - min;
        let mut max_delta = 0.0f32;
        for i in 0..64 {
            for j in 1..64 {
                max_delta = max_delta.max((f[i * 64 + j] - f[i * 64 + j - 1]).abs());
            }
        }
        assert!(
            max_delta < range * 0.25,
            "field too rough: delta {max_delta}, range {range}"
        );
    }

    #[test]
    fn levels_are_vertically_correlated() {
        let mut rng = field_rng(7, 0, 0);
        let f = smooth_field(&mut rng, 2, 32, 32, 0.0, 10.0);
        let (a, b) = f.split_at(32 * 32);
        // Adjacent levels should be similar (drifted, not independent).
        let diff: f32 = a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f32>() / a.len() as f32;
        let spread: f32 = a.iter().map(|x| x.abs()).sum::<f32>() / a.len() as f32;
        assert!(
            diff < spread,
            "levels uncorrelated: diff {diff}, spread {spread}"
        );
    }
}
