//! Dataset shape: the NU-WRF data model of §IV-A / §V-A.

/// The 23 single-precision NU-WRF variables (rainfall `QR` is the one the
/// paper analyses; the others are the redundant I/O the copy-based
/// solutions cannot avoid).
pub const VAR_NAMES: [&str; 23] = [
    "QR", "QC", "QI", "QS", "QG", "QV", "T", "U", "V", "W", "P", "PB", "PH", "PHB", "TSLB",
    "SMOIS", "RAINC", "RAINNC", "SWDOWN", "GLW", "HFX", "LH", "TSK",
];

/// Generation parameters.
#[derive(Clone, Debug)]
pub struct WrfSpec {
    /// Number of output files (one per simulated timestamp).
    pub timestamps: usize,
    /// Vertical levels (paper: 50).
    pub levels: usize,
    /// Real (scaled-down) horizontal grid.
    pub lat: usize,
    pub lon: usize,
    /// Paper horizontal grid the logical byte counts refer to.
    pub paper_lat: usize,
    pub paper_lon: usize,
    /// How many of the 23 variables to materialize (23 = full model).
    pub n_vars: usize,
    /// Chunk shape `[chunk_levels, lat, lon]` — netCDF-4 chunking along the
    /// vertical axis.
    pub chunk_levels: usize,
    pub seed: u64,
}

impl WrfSpec {
    /// Paper-shaped dataset at a reduced horizontal resolution.
    pub fn scaled(lat: usize, lon: usize, timestamps: usize) -> WrfSpec {
        WrfSpec {
            timestamps,
            levels: 50,
            lat,
            lon,
            paper_lat: 1250,
            paper_lon: 1250,
            n_vars: VAR_NAMES.len(),
            chunk_levels: 10,
            seed: 0x5c1d_9000,
        }
    }

    /// Tiny configuration for unit tests.
    pub fn tiny(timestamps: usize) -> WrfSpec {
        WrfSpec {
            timestamps,
            levels: 4,
            lat: 8,
            lon: 8,
            paper_lat: 1250,
            paper_lon: 1250,
            n_vars: 3,
            chunk_levels: 2,
            seed: 42,
        }
    }

    /// Logical bytes per real byte (spatial scale-down factor).
    pub fn scale_factor(&self) -> f64 {
        (self.paper_lat * self.paper_lon) as f64 / (self.lat * self.lon) as f64
    }

    /// Real raw bytes of one variable.
    pub fn var_raw_bytes(&self) -> usize {
        self.levels * self.lat * self.lon * 4
    }

    /// Logical raw bytes of one variable (paper: ~298 MB).
    pub fn var_raw_bytes_logical(&self) -> f64 {
        self.var_raw_bytes() as f64 * self.scale_factor()
    }

    /// File name of timestamp `t` (NU-WRF writes one file per timestamp,
    /// e.g. `plot_18_00_00.nc` in the paper's example).
    pub fn file_name(&self, t: usize) -> String {
        format!("plot_{t:04}_00_00.snc")
    }

    pub fn var_names(&self) -> &'static [&'static str] {
        &VAR_NAMES[..self.n_vars]
    }
}

/// Summary of a generated dataset.
#[derive(Clone, Debug)]
pub struct DatasetInfo {
    /// PFS paths of the generated files, in timestamp order.
    pub files: Vec<String>,
    /// Real raw bytes across all variables and files.
    pub raw_bytes: usize,
    /// Real stored (compressed) bytes.
    pub stored_bytes: usize,
    /// Logical-to-real scale factor used.
    pub scale: f64,
}

impl DatasetInfo {
    /// Raw / stored — the paper reports ~3.27x (298 MB → 91 MB).
    pub fn compression_ratio(&self) -> f64 {
        self.raw_bytes as f64 / self.stored_bytes.max(1) as f64
    }

    /// Logical stored bytes (what the simulator charges for transfers).
    pub fn stored_bytes_logical(&self) -> f64 {
        self.stored_bytes as f64 * self.scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_shape_constants() {
        assert_eq!(VAR_NAMES.len(), 23);
        assert_eq!(VAR_NAMES[0], "QR");
        let s = WrfSpec::scaled(1250, 1250, 48);
        // Full-resolution raw variable ≈ 298 MB (paper §IV-A).
        let mb = s.var_raw_bytes() as f64 / 1e6;
        assert!((mb - 312.5).abs() < 1.0, "raw var = {mb} MB");
        assert_eq!(s.scale_factor(), 1.0);
    }

    #[test]
    fn scale_factor_recovers_paper_bytes() {
        let s = WrfSpec::scaled(125, 125, 48);
        assert_eq!(s.scale_factor(), 100.0);
        let logical_mb = s.var_raw_bytes_logical() / 1e6;
        assert!((logical_mb - 312.5).abs() < 1.0);
    }

    #[test]
    fn file_names_sort_in_time_order() {
        let s = WrfSpec::tiny(3);
        let names: Vec<String> = (0..3).map(|t| s.file_name(t)).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }
}
