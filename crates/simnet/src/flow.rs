//! Flow-level network/storage model with max–min fair bandwidth sharing.
//!
//! Every shared pipe in the simulated cluster — a disk, a NIC transmit or
//! receive side, the core switch fabric — is a [`Resource`] with a fixed
//! capacity in bytes/second. A transfer is a [`Flow`]: a number of bytes
//! pushed along a *path* (an ordered set of resources). At any instant the
//! rate of each active flow is the **max–min fair allocation**: capacity is
//! divided by progressive filling, so a flow gets the fair share of its most
//! contended resource and unused capacity is redistributed to the others.
//!
//! The allocation is recomputed whenever a flow starts or finishes (the
//! classic "fluid" approximation of TCP sharing used by flow-level simulators
//! such as SimGrid). Between recomputations every flow progresses linearly at
//! its assigned rate, so completion times are exact.

use crate::time::SimTime;

/// Index of a [`Resource`] inside a [`FlowNet`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceId(pub u32);

/// Identifier of an active flow. Never reused within one simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FlowId(pub u64);

/// A capacity-limited pipe (disk, NIC side, switch fabric, ...).
#[derive(Clone, Debug)]
pub struct Resource {
    /// Human-readable name, used in traces and error messages.
    pub name: String,
    /// Capacity in bytes per second. `f64::INFINITY` means uncontended.
    pub capacity: f64,
    /// Stream-interference coefficient (rotating disks): with `n`
    /// concurrent flows the effective capacity is
    /// `capacity / (1 + thrash * (n - 1))` — interleaved streams cost head
    /// movement. 0 for NICs/switches (default).
    pub thrash: f64,
}

#[derive(Debug)]
struct FlowState {
    id: FlowId,
    path: Vec<ResourceId>,
    /// Bytes still to transfer as of `FlowNet::last_update`.
    remaining: f64,
    /// Current max–min fair rate in bytes/second.
    rate: f64,
}

/// The set of resources plus all currently active flows.
///
/// `FlowNet` is pure bookkeeping: it knows *rates* and *remaining bytes* but
/// not the event queue. The [`crate::Sim`] engine drives it, translating rate
/// changes into (re)scheduled completion events.
#[derive(Debug, Default)]
pub struct FlowNet {
    resources: Vec<Resource>,
    flows: Vec<FlowState>,
    next_flow: u64,
    /// Bumped on every rate recomputation; stale completion events compare
    /// their recorded epoch against this and no-op if it moved on.
    pub(crate) epoch: u64,
    last_update: SimTime,
    /// Total bytes ever admitted, for reporting.
    pub bytes_admitted: f64,
}

impl FlowNet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a resource and return its id.
    pub fn add_resource(&mut self, name: impl Into<String>, capacity: f64) -> ResourceId {
        self.add_resource_thrash(name, capacity, 0.0)
    }

    /// Register a resource with a stream-interference coefficient (HDDs).
    pub fn add_resource_thrash(
        &mut self,
        name: impl Into<String>,
        capacity: f64,
        thrash: f64,
    ) -> ResourceId {
        assert!(capacity > 0.0, "resource capacity must be positive");
        assert!(
            (0.0..=10.0).contains(&thrash),
            "implausible thrash {thrash}"
        );
        let id = ResourceId(self.resources.len() as u32);
        self.resources.push(Resource {
            name: name.into(),
            capacity,
            thrash,
        });
        id
    }

    /// Look up a resource.
    pub fn resource(&self, id: ResourceId) -> &Resource {
        &self.resources[id.0 as usize]
    }

    /// Number of registered resources.
    pub fn n_resources(&self) -> usize {
        self.resources.len()
    }

    /// Number of currently active flows.
    pub fn n_active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Advance all flow progress to time `now` using current rates.
    /// Must be called before any add/remove at time `now`.
    pub(crate) fn advance_to(&mut self, now: SimTime) {
        let dt = now - self.last_update;
        debug_assert!(dt >= -1e-9, "time went backwards: {dt}");
        if dt > 0.0 {
            for f in &mut self.flows {
                f.remaining = (f.remaining - f.rate * dt).max(0.0);
            }
        }
        self.last_update = now;
    }

    /// Admit a flow of `bytes` along `path`. Caller must `advance_to(now)`
    /// first and recompute rates afterwards.
    pub(crate) fn admit(&mut self, path: Vec<ResourceId>, bytes: f64) -> FlowId {
        assert!(
            bytes >= 0.0 && bytes.is_finite(),
            "invalid flow size {bytes}"
        );
        for r in &path {
            assert!(
                (r.0 as usize) < self.resources.len(),
                "unknown resource {r:?}"
            );
        }
        let id = FlowId(self.next_flow);
        self.next_flow += 1;
        self.bytes_admitted += bytes;
        self.flows.push(FlowState {
            id,
            path,
            remaining: bytes,
            rate: 0.0,
        });
        id
    }

    /// Remove and return every flow whose remaining bytes have drained
    /// (call after [`Self::advance_to`]). Order is deterministic (admission
    /// order).
    pub(crate) fn take_finished(&mut self) -> Vec<FlowId> {
        // A flow is done when its remainder is negligible OR when it could
        // not drain within one representable step of virtual time (the
        // remainder is below rate x ulp(now) — scheduling a tick for it
        // would land on the same instant and livelock).
        let t = self.last_update.secs().abs().max(1.0);
        let ulp = t * f64::EPSILON * 4.0;
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.flows.len() {
            if self.flows[i].remaining <= 1e-6
                || self.flows[i].remaining <= self.flows[i].rate * ulp
            {
                out.push(self.flows[i].id);
                self.flows.remove(i);
            } else {
                i += 1;
            }
        }
        out
    }

    /// Remove a flow (normally because it completed). Returns whether it was
    /// present.
    #[allow(dead_code)]
    pub(crate) fn remove(&mut self, id: FlowId) -> bool {
        if let Some(pos) = self.flows.iter().position(|f| f.id == id) {
            self.flows.swap_remove(pos);
            true
        } else {
            false
        }
    }

    /// Remaining bytes of a flow, if still active.
    pub fn remaining(&self, id: FlowId) -> Option<f64> {
        self.flows.iter().find(|f| f.id == id).map(|f| f.remaining)
    }

    /// Current rate of a flow, if still active.
    pub fn rate(&self, id: FlowId) -> Option<f64> {
        self.flows.iter().find(|f| f.id == id).map(|f| f.rate)
    }

    /// Recompute all flow rates by progressive filling (max–min fairness)
    /// and bump the epoch. Returns, for every active flow, its predicted
    /// completion time offset from `last_update` (`remaining / rate`).
    pub(crate) fn recompute_rates(&mut self) -> Vec<(FlowId, f64)> {
        self.epoch += 1;
        let nf = self.flows.len();
        if nf == 0 {
            return Vec::new();
        }
        let nr = self.resources.len();
        // Residual capacity per resource and number of unfrozen flows using it.
        let mut users: Vec<u32> = vec![0; nr];
        for f in &self.flows {
            for r in &f.path {
                users[r.0 as usize] += 1;
            }
        }
        // Disk stream-interference: effective capacity shrinks with the
        // number of concurrent streams (head thrashing on HDDs).
        let mut cap: Vec<f64> = self
            .resources
            .iter()
            .zip(&users)
            .map(|(r, &u)| {
                if r.thrash > 0.0 && u > 1 {
                    // Elevator scheduling bounds the worst case: cap the
                    // interference degradation at 3x.
                    r.capacity / (1.0 + r.thrash * (u - 1) as f64).min(3.0)
                } else {
                    r.capacity
                }
            })
            .collect();
        let mut frozen = vec![false; nf];
        let mut rates = vec![0.0f64; nf];
        let mut remaining_flows = nf;

        while remaining_flows > 0 {
            // Find bottleneck: resource with the smallest fair share.
            let mut best: Option<(usize, f64)> = None;
            for (ri, (&c, &u)) in cap.iter().zip(users.iter()).enumerate() {
                if u == 0 || !c.is_finite() {
                    continue;
                }
                let share = c / u as f64;
                match best {
                    Some((_, s)) if s <= share => {}
                    _ => best = Some((ri, share)),
                }
            }
            let Some((bottleneck, share)) = best else {
                // All remaining flows pass only through infinite resources.
                for (fi, f) in self.flows.iter().enumerate() {
                    if !frozen[fi] {
                        rates[fi] = f64::INFINITY;
                        let _ = f;
                    }
                }
                break;
            };
            // Freeze every unfrozen flow crossing the bottleneck at `share`.
            for fi in 0..nf {
                if frozen[fi] {
                    continue;
                }
                if self.flows[fi]
                    .path
                    .iter()
                    .any(|r| r.0 as usize == bottleneck)
                {
                    frozen[fi] = true;
                    rates[fi] = share;
                    remaining_flows -= 1;
                    for r in &self.flows[fi].path {
                        let ri = r.0 as usize;
                        if cap[ri].is_finite() {
                            cap[ri] = (cap[ri] - share).max(0.0);
                        }
                        users[ri] -= 1;
                    }
                }
            }
            debug_assert_eq!(users[bottleneck], 0);
        }

        let mut out = Vec::with_capacity(nf);
        for (fi, f) in self.flows.iter_mut().enumerate() {
            f.rate = rates[fi];
            if f.rate.is_infinite() {
                // Uncontended path (e.g. loopback): transfers instantly.
                // Zero the remainder here — progress accounting advances by
                // rate x elapsed-time, which is NaN/undefined for an
                // infinite rate over zero time.
                f.remaining = 0.0;
            }
            let eta = if f.remaining <= 1e-6 {
                0.0
            } else if f.rate == 0.0 {
                f64::INFINITY
            } else {
                f.remaining / f.rate
            };
            out.push((f.id, eta));
        }
        out
    }

    pub(crate) fn last_update(&self) -> SimTime {
        self.last_update
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net_with(caps: &[f64]) -> FlowNet {
        let mut n = FlowNet::new();
        for (i, &c) in caps.iter().enumerate() {
            n.add_resource(format!("r{i}"), c);
        }
        n
    }

    #[test]
    fn single_flow_gets_full_capacity() {
        let mut n = net_with(&[100.0]);
        let f = n.admit(vec![ResourceId(0)], 1000.0);
        let etas = n.recompute_rates();
        assert_eq!(etas.len(), 1);
        assert_eq!(n.rate(f), Some(100.0));
        assert!((etas[0].1 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn two_flows_share_fairly() {
        let mut n = net_with(&[100.0]);
        let a = n.admit(vec![ResourceId(0)], 1000.0);
        let b = n.admit(vec![ResourceId(0)], 500.0);
        n.recompute_rates();
        assert_eq!(n.rate(a), Some(50.0));
        assert_eq!(n.rate(b), Some(50.0));
    }

    #[test]
    fn bottleneck_redistribution() {
        // Flow A uses r0 (cap 100) only; flow B uses r0 and r1 (cap 10).
        // B is bottlenecked at 10 by r1, A should get the leftover 90.
        let mut n = net_with(&[100.0, 10.0]);
        let a = n.admit(vec![ResourceId(0)], 1e6);
        let b = n.admit(vec![ResourceId(0), ResourceId(1)], 1e6);
        n.recompute_rates();
        assert!((n.rate(b).unwrap() - 10.0).abs() < 1e-9);
        assert!((n.rate(a).unwrap() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn progress_advances_with_time() {
        let mut n = net_with(&[100.0]);
        let f = n.admit(vec![ResourceId(0)], 1000.0);
        n.recompute_rates();
        n.advance_to(SimTime(4.0));
        assert!((n.remaining(f).unwrap() - 600.0).abs() < 1e-9);
        n.advance_to(SimTime(10.0));
        assert_eq!(n.remaining(f), Some(0.0));
    }

    #[test]
    fn removal_frees_capacity() {
        let mut n = net_with(&[100.0]);
        let a = n.admit(vec![ResourceId(0)], 1000.0);
        let b = n.admit(vec![ResourceId(0)], 1000.0);
        n.recompute_rates();
        assert_eq!(n.rate(a), Some(50.0));
        assert!(n.remove(b));
        n.recompute_rates();
        assert_eq!(n.rate(a), Some(100.0));
        assert!(!n.remove(b));
    }

    #[test]
    fn infinite_resources_never_bottleneck() {
        let mut n = FlowNet::new();
        let inf = n.add_resource("inf", f64::INFINITY);
        let cap = n.add_resource("cap", 50.0);
        let f = n.admit(vec![inf, cap], 100.0);
        n.recompute_rates();
        assert_eq!(n.rate(f), Some(50.0));
    }

    #[test]
    fn thrash_degrades_with_stream_count_and_caps() {
        let mut n = FlowNet::new();
        let d = n.add_resource_thrash("hdd", 100.0, 0.5);
        // 1 stream: full capacity.
        let f = n.admit(vec![d], 1e6);
        n.recompute_rates();
        assert_eq!(n.rate(f), Some(100.0));
        // 3 streams: 100 / (1 + 0.5*2) = 50 total → ~16.7 each.
        n.admit(vec![d], 1e6);
        n.admit(vec![d], 1e6);
        n.recompute_rates();
        assert!((n.rate(f).unwrap() - 50.0 / 3.0).abs() < 1e-9);
        // Many streams: degradation capped at 3x → 33.3 total.
        for _ in 0..20 {
            n.admit(vec![d], 1e6);
        }
        n.recompute_rates();
        let total: f64 = 23.0 * n.rate(f).unwrap();
        assert!((total - 100.0 / 3.0).abs() < 1e-6, "total {total}");
    }

    #[test]
    fn take_finished_returns_only_drained_flows() {
        let mut n = net_with(&[100.0]);
        let a = n.admit(vec![ResourceId(0)], 100.0);
        let b = n.admit(vec![ResourceId(0)], 500.0);
        n.recompute_rates();
        n.advance_to(SimTime(2.0)); // each got 50 B/s x 2s = 100
        let done = n.take_finished();
        assert_eq!(done, vec![a]);
        assert!(n.remaining(b).unwrap() > 0.0);
        assert_eq!(n.n_active_flows(), 1);
    }

    #[test]
    fn rates_conserve_capacity() {
        // Sum of rates through any resource never exceeds its capacity.
        let mut n = net_with(&[100.0, 60.0, 30.0]);
        let paths: Vec<Vec<ResourceId>> = vec![
            vec![ResourceId(0)],
            vec![ResourceId(0), ResourceId(1)],
            vec![ResourceId(1), ResourceId(2)],
            vec![ResourceId(0), ResourceId(2)],
            vec![ResourceId(2)],
        ];
        for p in paths {
            n.admit(p, 1e9);
        }
        n.recompute_rates();
        for ri in 0..3 {
            let total: f64 = n
                .flows
                .iter()
                .filter(|f| f.path.iter().any(|r| r.0 as usize == ri))
                .map(|f| f.rate)
                .sum();
            assert!(
                total <= n.resources[ri].capacity + 1e-6,
                "resource {ri} oversubscribed: {total}"
            );
        }
        // Max-min property: every flow is bottlenecked somewhere (its rate
        // cannot be increased without exceeding some capacity).
        for (fi, f) in n.flows.iter().enumerate() {
            let bottled = f.path.iter().any(|r| {
                let ri = r.0 as usize;
                let total: f64 = n
                    .flows
                    .iter()
                    .filter(|g| g.path.iter().any(|x| x.0 as usize == ri))
                    .map(|g| g.rate)
                    .sum();
                total >= n.resources[ri].capacity - 1e-6
            });
            assert!(bottled, "flow {fi} is not bottlenecked anywhere");
        }
    }
}
