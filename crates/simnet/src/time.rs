//! Simulated-time newtype.
//!
//! Virtual time is kept as `f64` seconds. The newtype provides a total order
//! (via [`f64::total_cmp`]) so times can live in ordered collections, and
//! guards against accidentally mixing virtual seconds with real wall-clock
//! durations.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in seconds since simulation start.
#[derive(Clone, Copy, Debug, Default, PartialEq, PartialOrd)]
pub struct SimTime(pub f64);

impl SimTime {
    /// Simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0.0);

    /// Seconds since simulation start.
    #[inline]
    pub fn secs(self) -> f64 {
        self.0
    }

    /// `true` if this time is finite and non-negative — i.e. a time the
    /// simulator is actually able to reach.
    #[inline]
    pub fn is_valid(self) -> bool {
        self.0.is_finite() && self.0 >= 0.0
    }

    /// The later of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if other.0 > self.0 {
            other
        } else {
            self
        }
    }
}

impl Eq for SimTime {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimTime {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: f64) -> SimTime {
        SimTime(self.0 + rhs)
    }
}

impl AddAssign<f64> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: f64) {
        self.0 += rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = f64;
    #[inline]
    fn sub(self, rhs: SimTime) -> f64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total() {
        let a = SimTime(1.0);
        let b = SimTime(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime(1.5) + 0.5;
        assert_eq!(t, SimTime(2.0));
        assert!((t - SimTime(0.5) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn validity() {
        assert!(SimTime(0.0).is_valid());
        assert!(SimTime(1e9).is_valid());
        assert!(!SimTime(-1.0).is_valid());
        assert!(!SimTime(f64::NAN).is_valid());
        assert!(!SimTime(f64::INFINITY).is_valid());
    }

    #[test]
    fn display_renders_seconds() {
        assert_eq!(SimTime(1.25).to_string(), "1.250s");
    }
}
