//! Cluster-wide tiered chunk-cache registry.
//!
//! The per-process [`scifmt`-level] decompressed-chunk LRU only helps within
//! one job: every new job (or DAG stage) starts cold and re-pays the full
//! PFS read + decompress cost for chunks a node decoded seconds earlier.
//! This module promotes that cache to a simulated **cluster tier**: one
//! registry per [`crate::Sim`] world records, per compute node, which hot
//! SNC chunks that node holds decompressed in memory. Jobs and DAG stages
//! sharing the world share the registry, so stage N+1 of an iterative
//! pipeline can (a) be *scheduled* onto the nodes that decoded stage N's
//! chunks and (b) serve those chunks at memory speed instead of re-reading
//! the PFS.
//!
//! Design rules (all enforced here, relied on by `mapreduce`/`scidp`):
//!
//! * **Determinism** — every map is a `BTreeMap`; recency is a monotonic
//!   tick counter, never wall-clock. Same program ⇒ same evictions.
//! * **Byte-fidelity** — entries store the *verified decompressed bytes*
//!   admitted by the reader, so a hit returns exactly what a cold
//!   read-verify-decompress would have produced.
//! * **Size-aware admission** — an entry larger than
//!   `admit_max_fraction × per-node capacity` is refused, so one giant
//!   cold scan cannot flush a node's hot set.
//! * **Quarantine fidelity** — a chunk quarantined by the integrity layer
//!   is purged from every node and never admitted again.
//! * **Failure fidelity** — a killed node's entries are invalidated just
//!   like its shuffle outputs (memory dies with the process).
//!
//! The registry is *disabled by default* (zero per-node capacity): with no
//! capacity nothing is ever admitted, `lookup` always misses, and every
//! existing workload's timing is bit-for-bit unchanged.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use crate::topology::NodeId;

/// Identity of a cached chunk: `(content-derived file key, chunk offset)`.
/// The file key is content-derived (not path-derived), so re-opens and
/// re-mapped datasets share entries and a rewritten file never aliases.
pub type ChunkKey = (u64, u64);

/// Default ceiling on a single entry as a fraction of per-node capacity.
/// Entries above it are refused admission (streaming-scan flush guard).
pub const DEFAULT_ADMIT_MAX_FRACTION: f64 = 0.125;

/// Bound on the never-admit quarantine set (mirrors the reader's own
/// bounded quarantine LRU; prevents unbounded growth in long worlds).
const QUARANTINE_CAP: usize = 4096;

/// Aggregate registry statistics, monotonic over the world's lifetime.
/// Per-job deltas are taken by snapshotting before/after a job.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ClusterCacheStats {
    /// Lookups that found the chunk resident on the asking node.
    pub hits: u64,
    /// Lookups that missed on the asking node.
    pub misses: u64,
    /// Entries evicted to make room (LRU, unpinned before pinned).
    pub evictions: u64,
    /// Entries admitted.
    pub inserts: u64,
    /// Admissions refused by the size-aware filter or quarantine.
    pub rejected: u64,
    /// Entries dropped by node-kill invalidation.
    pub invalidated: u64,
}

#[derive(Debug)]
struct Entry {
    data: Arc<Vec<u8>>,
    /// Recency tick of the last lookup/insert touching this entry.
    last_tick: u64,
    /// Pinned entries (placement policy: `CachePinned` datasets) are only
    /// evicted once every unpinned entry is gone.
    pinned: bool,
}

#[derive(Debug, Default)]
struct NodeShard {
    bytes: u64,
    map: BTreeMap<ChunkKey, Entry>,
    /// Recency index: tick → key. Ticks are unique, so this is a total
    /// order; the smallest tick is the LRU entry.
    order: BTreeMap<u64, ChunkKey>,
}

#[derive(Debug, Default)]
struct Inner {
    per_node_capacity: u64,
    admit_max_fraction: f64,
    tick: u64,
    nodes: BTreeMap<NodeId, NodeShard>,
    /// Never-admit set with FIFO bound (insertion-ordered by tick).
    quarantined: BTreeSet<ChunkKey>,
    quarantine_order: BTreeMap<u64, ChunkKey>,
    stats: ClusterCacheStats,
}

/// The cluster cache registry. One per simulated world, shared (via
/// `Rc`) by every job and DAG stage running in it. Interior-mutable —
/// the sim is single-threaded and callbacks only hold `&self`.
#[derive(Debug, Default)]
pub struct ClusterCache {
    inner: RefCell<Inner>,
}

impl ClusterCache {
    /// A registry with `per_node_capacity` bytes of chunk memory per
    /// compute node. Zero capacity = disabled (all lookups miss, no
    /// admissions, no timing impact).
    pub fn new(per_node_capacity: u64) -> ClusterCache {
        ClusterCache {
            inner: RefCell::new(Inner {
                per_node_capacity,
                admit_max_fraction: DEFAULT_ADMIT_MAX_FRACTION,
                ..Inner::default()
            }),
        }
    }

    /// Is the tier on at all? Callers use this to skip work (hint
    /// precomputation, scheduler scans) when the cache cannot matter.
    pub fn enabled(&self) -> bool {
        self.inner.borrow().per_node_capacity > 0
    }

    /// Per-node capacity in bytes.
    pub fn per_node_capacity(&self) -> u64 {
        self.inner.borrow().per_node_capacity
    }

    /// Resize the per-node capacity (shrinking evicts LRU-first on each
    /// node until resident bytes fit).
    pub fn set_per_node_capacity(&self, bytes: u64) {
        let mut g = self.inner.borrow_mut();
        g.per_node_capacity = bytes;
        let nodes: Vec<NodeId> = g.nodes.keys().copied().collect();
        for n in nodes {
            g.shrink_to_fit(n, 0);
        }
    }

    /// Override the size-aware admission ceiling (fraction of per-node
    /// capacity a single entry may occupy).
    pub fn set_admit_max_fraction(&self, f: f64) {
        self.inner.borrow_mut().admit_max_fraction = f;
    }

    /// Look up `key` on `node`, bumping recency on a hit. Counts a hit or
    /// miss in the registry stats. Only *node-local* residency is a hit:
    /// remote holders influence scheduling, not data service.
    pub fn lookup(&self, node: NodeId, key: ChunkKey) -> Option<Arc<Vec<u8>>> {
        let mut g = self.inner.borrow_mut();
        if g.per_node_capacity == 0 {
            return None;
        }
        g.tick += 1;
        let tick = g.tick;
        let Some(shard) = g.nodes.get_mut(&node) else {
            g.stats.misses += 1;
            return None;
        };
        match shard.map.get_mut(&key) {
            Some(e) => {
                let old = e.last_tick;
                e.last_tick = tick;
                let data = Arc::clone(&e.data);
                shard.order.remove(&old);
                shard.order.insert(tick, key);
                g.stats.hits += 1;
                Some(data)
            }
            None => {
                g.stats.misses += 1;
                None
            }
        }
    }

    /// Non-counting, non-bumping residency probe — the scheduler's view.
    pub fn holds(&self, node: NodeId, key: ChunkKey) -> bool {
        let g = self.inner.borrow();
        g.nodes.get(&node).is_some_and(|s| s.map.contains_key(&key))
    }

    /// Admit `data` for `key` on `node`. Refused (counted in
    /// `stats.rejected`) when the tier is disabled, the chunk is
    /// quarantined, or the entry exceeds the size-aware ceiling.
    /// Evicts LRU entries (unpinned first) until the entry fits.
    pub fn insert(&self, node: NodeId, key: ChunkKey, data: Arc<Vec<u8>>, pinned: bool) -> bool {
        let mut g = self.inner.borrow_mut();
        if g.per_node_capacity == 0 {
            return false;
        }
        if g.quarantined.contains(&key) {
            g.stats.rejected += 1;
            return false;
        }
        let len = data.len() as u64;
        let ceiling = (g.admit_max_fraction * g.per_node_capacity as f64) as u64;
        if len == 0 || len > ceiling.max(1) {
            g.stats.rejected += 1;
            return false;
        }
        g.tick += 1;
        let tick = g.tick;
        // Drop any stale entry for the key first (re-admission refreshes).
        if g.nodes.get(&node).is_some_and(|s| s.map.contains_key(&key)) {
            g.remove_entry(node, key);
        }
        g.shrink_to_fit(node, len);
        let shard = g.nodes.entry(node).or_default();
        shard.bytes += len;
        shard.order.insert(tick, key);
        shard.map.insert(
            key,
            Entry {
                data,
                last_tick: tick,
                pinned,
            },
        );
        g.stats.inserts += 1;
        true
    }

    /// Purge `key` from every node and never admit it again (bounded
    /// never-admit set). Called when the integrity layer quarantines a
    /// chunk — cached copies of a suspect chunk must not outlive it.
    pub fn quarantine(&self, key: ChunkKey) {
        let mut g = self.inner.borrow_mut();
        let nodes: Vec<NodeId> = g.nodes.keys().copied().collect();
        for n in nodes {
            g.remove_entry(n, key);
        }
        if g.quarantined.insert(key) {
            g.tick += 1;
            let tick = g.tick;
            g.quarantine_order.insert(tick, key);
            while g.quarantined.len() > QUARANTINE_CAP {
                let Some((&t, &k)) = g.quarantine_order.iter().next() else {
                    break;
                };
                g.quarantine_order.remove(&t);
                g.quarantined.remove(&k);
            }
        }
    }

    /// Is `key` on the never-admit list?
    pub fn is_quarantined(&self, key: ChunkKey) -> bool {
        self.inner.borrow().quarantined.contains(&key)
    }

    /// Drop every entry `node` holds — its memory died with it. Mirrors
    /// shuffle-output invalidation on node kill.
    pub fn invalidate_node(&self, node: NodeId) {
        let mut g = self.inner.borrow_mut();
        if let Some(shard) = g.nodes.remove(&node) {
            g.stats.invalidated += shard.map.len() as u64;
        }
    }

    /// Resident bytes on `node`.
    pub fn resident_bytes(&self, node: NodeId) -> u64 {
        self.inner.borrow().nodes.get(&node).map_or(0, |s| s.bytes)
    }

    /// Total entries resident across the cluster.
    pub fn resident_entries(&self) -> u64 {
        let g = self.inner.borrow();
        g.nodes.values().map(|s| s.map.len() as u64).sum()
    }

    /// Lifetime statistics snapshot.
    pub fn stats(&self) -> ClusterCacheStats {
        self.inner.borrow().stats
    }
}

impl Inner {
    /// Remove `key` from `node`'s shard if present (no stats change other
    /// than byte accounting; callers count what the removal *means*).
    fn remove_entry(&mut self, node: NodeId, key: ChunkKey) {
        if let Some(shard) = self.nodes.get_mut(&node) {
            if let Some(e) = shard.map.remove(&key) {
                shard.bytes -= e.data.len() as u64;
                shard.order.remove(&e.last_tick);
            }
        }
    }

    /// Evict LRU entries from `node` until `incoming` more bytes fit in
    /// the per-node capacity. Unpinned entries go first; pinned entries
    /// are only sacrificed when no unpinned entry remains (so pinning can
    /// never deadlock admission).
    fn shrink_to_fit(&mut self, node: NodeId, incoming: u64) {
        let cap = self.per_node_capacity;
        loop {
            let Some(shard) = self.nodes.get_mut(&node) else {
                return;
            };
            if shard.bytes + incoming <= cap {
                return;
            }
            // LRU-first among unpinned; fall back to LRU among pinned.
            let victim = shard
                .order
                .values()
                .copied()
                .find(|k| shard.map.get(k).is_some_and(|e| !e.pinned))
                .or_else(|| shard.order.values().next().copied());
            let Some(v) = victim else {
                return;
            };
            self.remove_entry(node, v);
            self.stats.evictions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bytes(n: usize) -> Arc<Vec<u8>> {
        Arc::new(vec![7u8; n])
    }

    #[test]
    fn disabled_registry_never_hits_or_admits() {
        let c = ClusterCache::new(0);
        assert!(!c.enabled());
        assert!(!c.insert(NodeId(0), (1, 0), bytes(10), false));
        assert!(c.lookup(NodeId(0), (1, 0)).is_none());
        assert_eq!(c.stats(), ClusterCacheStats::default());
    }

    #[test]
    fn hit_returns_admitted_bytes_node_locally_only() {
        let c = ClusterCache::new(1 << 20);
        let data = bytes(100);
        assert!(c.insert(NodeId(1), (42, 0), Arc::clone(&data), false));
        assert_eq!(c.lookup(NodeId(1), (42, 0)).as_deref(), Some(&*data));
        // Remote node: residency visible to the scheduler, not a data hit.
        assert!(c.lookup(NodeId(0), (42, 0)).is_none());
        assert!(c.holds(NodeId(1), (42, 0)));
        assert!(!c.holds(NodeId(0), (42, 0)));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 1, 1));
    }

    #[test]
    fn lru_eviction_is_deterministic_and_counted() {
        let c = ClusterCache::new(1000);
        c.set_admit_max_fraction(1.0);
        assert!(c.insert(NodeId(0), (1, 0), bytes(400), false));
        assert!(c.insert(NodeId(0), (1, 1), bytes(400), false));
        // Touch (1,0) so (1,1) becomes LRU.
        assert!(c.lookup(NodeId(0), (1, 0)).is_some());
        assert!(c.insert(NodeId(0), (1, 2), bytes(400), false));
        assert!(c.holds(NodeId(0), (1, 0)));
        assert!(!c.holds(NodeId(0), (1, 1)), "LRU entry evicted");
        assert!(c.holds(NodeId(0), (1, 2)));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn size_aware_admission_refuses_giant_entries() {
        let c = ClusterCache::new(1000); // ceiling = 125 bytes
        assert!(c.insert(NodeId(0), (1, 0), bytes(100), false));
        assert!(!c.insert(NodeId(0), (1, 1), bytes(500), false));
        assert!(c.holds(NodeId(0), (1, 0)), "hot set survives the refusal");
        assert_eq!(c.stats().rejected, 1);
    }

    #[test]
    fn pinned_entries_evicted_last_but_never_deadlock() {
        let c = ClusterCache::new(1000);
        c.set_admit_max_fraction(1.0);
        assert!(c.insert(NodeId(0), (1, 0), bytes(400), true));
        assert!(c.insert(NodeId(0), (1, 1), bytes(400), false));
        // Inserting 400 more must evict the unpinned (1,1), though (1,0)
        // is older.
        assert!(c.insert(NodeId(0), (1, 2), bytes(400), false));
        assert!(c.holds(NodeId(0), (1, 0)));
        assert!(!c.holds(NodeId(0), (1, 1)));
        // All-pinned shard: admission still proceeds by evicting pinned.
        let p = ClusterCache::new(500);
        p.set_admit_max_fraction(1.0);
        assert!(p.insert(NodeId(0), (2, 0), bytes(400), true));
        assert!(p.insert(NodeId(0), (2, 1), bytes(400), true));
        assert!(!p.holds(NodeId(0), (2, 0)));
        assert!(p.holds(NodeId(0), (2, 1)));
    }

    #[test]
    fn quarantine_purges_and_blocks_admission() {
        let c = ClusterCache::new(1 << 20);
        assert!(c.insert(NodeId(0), (9, 0), bytes(10), false));
        assert!(c.insert(NodeId(3), (9, 0), bytes(10), false));
        c.quarantine((9, 0));
        assert!(!c.holds(NodeId(0), (9, 0)));
        assert!(!c.holds(NodeId(3), (9, 0)));
        assert!(c.is_quarantined((9, 0)));
        assert!(!c.insert(NodeId(0), (9, 0), bytes(10), false));
        assert_eq!(c.stats().rejected, 1);
    }

    #[test]
    fn node_kill_invalidates_only_that_node() {
        let c = ClusterCache::new(1 << 20);
        assert!(c.insert(NodeId(0), (1, 0), bytes(10), false));
        assert!(c.insert(NodeId(1), (1, 0), bytes(10), false));
        c.invalidate_node(NodeId(0));
        assert!(!c.holds(NodeId(0), (1, 0)));
        assert!(c.holds(NodeId(1), (1, 0)));
        assert_eq!(c.stats().invalidated, 1);
        assert_eq!(c.resident_bytes(NodeId(0)), 0);
        assert_eq!(c.resident_bytes(NodeId(1)), 10);
    }

    #[test]
    fn shrinking_capacity_evicts_to_fit() {
        let c = ClusterCache::new(1000);
        c.set_admit_max_fraction(1.0);
        assert!(c.insert(NodeId(0), (1, 0), bytes(400), false));
        assert!(c.insert(NodeId(0), (1, 1), bytes(400), false));
        c.set_per_node_capacity(500);
        assert_eq!(c.resident_bytes(NodeId(0)), 400);
        assert!(!c.holds(NodeId(0), (1, 0)), "older entry evicted");
        assert!(c.holds(NodeId(0), (1, 1)));
    }
}
