//! Calibrated virtual-cost model for compute phases.
//!
//! The SciDP paper reports wall-clock times from a Cloudera Hadoop + Lustre
//! testbed. Our reproduction executes the *real* data path (compression,
//! parsing, plotting, SQL) on scaled-down data, while the simulator charges
//! each phase a virtual duration derived from the *logical* (paper-sized)
//! work. All constants live here so the calibration is auditable in one
//! place; EXPERIMENTS.md documents the paper anchors for each value.
//!
//! Units: seconds per byte / per pixel / per row / per operation.

/// Per-phase virtual cost constants plus the real→logical scale factor.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Logical bytes per real byte. The synthetic datasets are generated at
    /// laptop-friendly resolution; multiplying by `scale` recovers the
    /// paper-sized byte counts for every transfer and per-byte compute cost.
    pub scale: f64,

    /// Disk head positioning + rotational latency charged once per disk
    /// request (HDD-class, 7200 RPM as on Chameleon).
    pub seek_s: f64,
    /// One metadata RPC (NameNode / MDS round trip).
    pub rpc_s: f64,
    /// Fixed per-task overhead (JVM start, scheduling, heartbeat slack).
    pub task_startup_s: f64,

    /// R `read.table`: text → typed columns. Dominates Fig. 7's Convert bar
    /// for the text-path solutions (~6 MB/s, R's notoriously slow parser).
    pub text_parse_per_byte: f64,
    /// Binary array → R data-frame conversion (SciDP's cheap Convert bar).
    pub binary_convert_per_byte: f64,
    /// Codec decode, charged per *raw* (decompressed) byte.
    pub decompress_per_byte: f64,
    /// Serving one raw byte from the cluster chunk-cache tier (a node-local
    /// memory copy — no disk, no NIC, no codec). Charged instead of the PFS
    /// read + decompress on a cluster-cache hit.
    pub cache_hit_per_byte: f64,
    /// Codec encode, charged per raw byte.
    pub compress_per_byte: f64,
    /// netCDF → CSV conversion, charged per raw byte (the offline step the
    /// paper measured at "more than one hour" for 14 GB of outputs).
    pub convert_to_text_per_byte: f64,

    /// Rasterising one output pixel with `image2d` + colour mapping.
    pub plot_per_pixel: f64,
    /// Evaluating one row in the `sqldf` engine.
    pub sql_per_row: f64,
    /// Shuffle sort/merge, per byte of map output.
    pub sort_per_byte: f64,
    /// Grep-style scan, per input byte (Fig. 2 workload).
    pub scan_per_byte: f64,

    /// Multiplier on compute phases when several tasks share a node
    /// (memory-bandwidth and cache interference; the paper notes the naive
    /// solution plots slightly *faster* per level because it runs
    /// contention-free).
    pub parallel_compute_penalty: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            scale: 1.0,
            seek_s: 0.008,
            rpc_s: 0.0005,
            task_startup_s: 1.0,
            // ~6 MB/s — R read.table on mixed numeric text.
            text_parse_per_byte: 1.6e-7,
            // ~65 MB/s — memcpy-ish reshaping into a data frame.
            binary_convert_per_byte: 1.5e-8,
            // ~1 GB/s — byte-shuffle + LZ decode.
            decompress_per_byte: 1.0e-9,
            // ~5 GB/s — memcpy out of a warm page cache.
            cache_hit_per_byte: 2.0e-10,
            // ~250 MB/s encode.
            compress_per_byte: 4.0e-9,
            // ~10 MB/s: dump + format every float as text (>1 h for the
            // 14 GB sample, matching §V-A).
            convert_to_text_per_byte: 1.0e-7,
            // 1200x1200 frame in ~0.5 s.
            plot_per_pixel: 3.5e-7,
            // ~200 M rows/s: a top-k/threshold scan is memory-bandwidth
            // bound (Fig. 9 shows `highlight` is nearly free).
            sql_per_row: 5.0e-9,
            sort_per_byte: 2.0e-8,
            scan_per_byte: 2.0e-9,
            parallel_compute_penalty: 1.2,
        }
    }
}

impl CostModel {
    /// Logical bytes corresponding to `real` stored bytes.
    #[inline]
    pub fn lbytes(&self, real: usize) -> f64 {
        real as f64 * self.scale
    }

    /// Virtual seconds to parse `real` bytes of text with `read.table`.
    #[inline]
    pub fn text_parse(&self, real: usize) -> f64 {
        self.lbytes(real) * self.text_parse_per_byte
    }

    /// Virtual seconds to convert `real` raw binary bytes into R structures.
    #[inline]
    pub fn binary_convert(&self, real: usize) -> f64 {
        self.lbytes(real) * self.binary_convert_per_byte
    }

    /// Virtual seconds to decompress to `real` raw bytes.
    #[inline]
    pub fn decompress(&self, real_raw: usize) -> f64 {
        self.lbytes(real_raw) * self.decompress_per_byte
    }

    /// Virtual seconds to compress `real` raw bytes.
    #[inline]
    pub fn compress(&self, real_raw: usize) -> f64 {
        self.lbytes(real_raw) * self.compress_per_byte
    }

    /// Virtual seconds to serve `real` raw bytes from the cluster
    /// chunk-cache tier (node-local memory copy).
    #[inline]
    pub fn cache_hit(&self, real_raw: usize) -> f64 {
        self.lbytes(real_raw) * self.cache_hit_per_byte
    }

    /// Virtual seconds to render a `w x h` *logical* image.
    ///
    /// Plot cost scales with the paper's image resolution (1200x1200 by
    /// default), not with the scaled-down raster we actually produce, so the
    /// caller passes logical dimensions directly.
    #[inline]
    pub fn plot(&self, logical_pixels: u64) -> f64 {
        logical_pixels as f64 * self.plot_per_pixel
    }

    /// Virtual seconds for a SQL pass over `logical_rows` rows.
    #[inline]
    pub fn sql(&self, logical_rows: u64) -> f64 {
        logical_rows as f64 * self.sql_per_row
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_multiplies_bytes() {
        let c = CostModel {
            scale: 10.0,
            ..CostModel::default()
        };
        assert_eq!(c.lbytes(100), 1000.0);
        assert!((c.text_parse(100) - 1000.0 * c.text_parse_per_byte).abs() < 1e-15);
    }

    #[test]
    fn conversion_of_paper_sample_exceeds_one_hour() {
        // §V-A: converting the 14 GB compressed sample took "more than one
        // hour". 14 GB compressed at the paper's ~3.27x ratio is ~46 GB raw.
        let c = CostModel::default();
        let raw = 46.0e9;
        let secs = raw * c.convert_to_text_per_byte;
        assert!(secs > 3600.0, "conversion modelled too fast: {secs}s");
        assert!(secs < 6.0 * 3600.0, "conversion absurdly slow: {secs}s");
    }

    #[test]
    fn text_parse_dominates_binary_convert() {
        // The mechanism behind Fig. 7: read.table is ~10x slower than
        // binary conversion per byte (and the text itself is ~33x bigger).
        let c = CostModel::default();
        assert!(c.text_parse_per_byte > 5.0 * c.binary_convert_per_byte);
    }

    #[test]
    fn plot_time_for_paper_resolution() {
        let c = CostModel::default();
        let t = c.plot(1200 * 1200);
        assert!(t > 0.1 && t < 2.0, "plot time per frame off: {t}");
    }
}
