//! Deterministic fault injection.
//!
//! A [`FaultPlan`] declares, up front and in full, every fault one run will
//! experience: nodes killed at fixed virtual times, specific reads that
//! fail, straggler nodes, and a seeded per-read failure probability. The
//! plan is interpreted by a [`FaultInjector`] owned by the [`crate::Sim`],
//! so every layer (PFS client, HDFS client, the MapReduce driver) consults
//! the *same* state. Because the plan is data and the probabilistic
//! failures are drawn from a [`scirng::Rng`] seeded from the plan, the same
//! seed + the same plan reproduce bit-identical fault sequences — and,
//! since the simulator itself is deterministic, bit-identical timings.

use std::collections::HashMap;

/// A declarative, seeded description of the faults to inject into one run.
///
/// The default plan is empty (no faults); [`FaultInjector::take_read_fault`]
/// short-circuits in that case so fault-free runs pay nothing.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// `(node, at_s)`: kill compute node `node` at virtual time `at_s`.
    /// A dead node loses its task slots, its running attempts, and its
    /// HDFS replicas.
    pub node_kills: Vec<(u32, f64)>,
    /// `(path, nth)`: fail the `nth` (1-based) timed read of `path`.
    pub read_faults: Vec<(String, u64)>,
    /// `(node, factor)`: multiply compute time on `node` by `factor`
    /// (a straggler; speculation exists to absorb these).
    pub slow_nodes: Vec<(u32, f64)>,
    /// Independently fail each timed read with this probability.
    pub read_fail_prob: f64,
    /// Seeded byte-flip corruptions (see [`CorruptSpec`]).
    pub corrupt_reads: Vec<CorruptSpec>,
    /// `(node, at_s)`: from virtual time `at_s`, compute started on `node`
    /// never completes. Unlike [`FaultPlan::slow_node`] the operation does
    /// not finish late — it never finishes, so only a deadline can catch it.
    pub node_hangs: Vec<(u32, f64)>,
    /// `(path, nth)`: the `nth` (1-based) timed read of `path` hangs —
    /// the completion callback is never invoked.
    pub read_hangs: Vec<(String, u64)>,
    /// Network partitions: each spec isolates a node group from the rest of
    /// the cluster over a virtual-time window (see [`PartitionSpec`]).
    pub partitions: Vec<PartitionSpec>,
    /// `(a, b, factor)`: multiply transfer time on the undirected link
    /// between nodes `a` and `b` by `factor` (> 1 = degraded link).
    pub slow_links: Vec<(u32, u32, f64)>,
    /// Seed for the probabilistic read failures and the corruption byte
    /// patterns.
    pub seed: u64,
}

/// One network partition: `nodes` become unreachable from the rest of the
/// cluster (including the driver) at `from_s`, healing at `heal_at_s`
/// (`f64::INFINITY` = never heals). Nodes inside the group can still reach
/// each other.
#[derive(Clone, Debug, PartialEq)]
pub struct PartitionSpec {
    /// The isolated node group.
    pub nodes: Vec<u32>,
    /// Virtual time the partition starts.
    pub from_s: f64,
    /// Virtual time the partition heals (exclusive; `INFINITY` = never).
    pub heal_at_s: f64,
}

impl PartitionSpec {
    /// Whether this partition is in effect at virtual time `now`.
    pub fn active(&self, now: f64) -> bool {
        self.from_s <= now && now < self.heal_at_s
    }
}

/// A structurally invalid [`FaultPlan`] entry, reported by
/// [`FaultPlan::validate`]. Builders accept the raw values (so plans stay
/// plain data); [`FaultInjector::install`] debug-asserts validity and clamps
/// invalid entries to no-ops in release builds.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultPlanError {
    /// `slow_node` factor is NaN, zero, or negative.
    BadSlowFactor { node: u32, factor: f64 },
    /// `slow_link` factor is NaN, zero, or negative.
    BadLinkFactor { a: u32, b: u32, factor: f64 },
    /// A `kill_node`/`hang_node` time is negative or NaN (virtual time
    /// starts at zero and is monotonic).
    BadTime { what: &'static str, at_s: f64 },
    /// A partition window is empty or runs backwards (`heal_at_s` must be
    /// strictly after `from_s`), or starts at a negative/NaN time.
    BadPartitionWindow { from_s: f64, heal_at_s: f64 },
    /// A partition isolates no nodes at all.
    EmptyPartitionGroup,
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultPlanError::BadSlowFactor { node, factor } => {
                write!(
                    f,
                    "slow_node({node}): factor {factor} must be finite and > 0"
                )
            }
            FaultPlanError::BadLinkFactor { a, b, factor } => {
                write!(
                    f,
                    "slow_link({a}, {b}): factor {factor} must be finite and > 0"
                )
            }
            FaultPlanError::BadTime { what, at_s } => {
                write!(f, "{what}: time {at_s} must be finite and >= 0")
            }
            FaultPlanError::BadPartitionWindow { from_s, heal_at_s } => write!(
                f,
                "partition: window [{from_s}, {heal_at_s}) is empty or non-monotonic"
            ),
            FaultPlanError::EmptyPartitionGroup => {
                write!(f, "partition: node group is empty")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// One seeded byte-flip corruption fault.
///
/// `path` names what gets corrupted: a PFS path for stripe reads, or an
/// HDFS block key (see `hdfs::block_fault_key`) for replica reads. The
/// corrupted byte position and XOR mask are derived deterministically from
/// `(plan seed, path, nth)` — never from the live PRNG stream — so adding a
/// corruption fault does not perturb the probabilistic-failure sequence.
#[derive(Clone, Debug, PartialEq)]
pub struct CorruptSpec {
    /// PFS path or HDFS block key the corruption applies to.
    pub path: String,
    /// 1-based timed read of `path` at which the corruption (first)
    /// appears.
    pub nth: u64,
    /// `true`: the storage layer's own checksum does *not* catch it — the
    /// flipped bytes are delivered as if valid and only an end-to-end
    /// checksum (the SNC chunk CRC) can detect them. `false`: the storage
    /// layer detects the mismatch itself and surfaces a typed error.
    pub silent: bool,
    /// `true`: every read from `nth` onward is corrupt (media corruption —
    /// re-reading cannot repair it). `false`: only the `nth` read is
    /// corrupt (a transient flip — the re-read fetches clean bytes).
    pub persistent: bool,
    /// HDFS replica scope: corrupt only the copy served by this node
    /// (single-replica — alternate replicas stay clean). `None` corrupts
    /// whichever copy serves the read (PFS reads, or all-replica HDFS
    /// corruption).
    pub replica: Option<u32>,
}

impl CorruptSpec {
    /// Whether this spec corrupts the `nth` read of `path`.
    fn matches(&self, path: &str, nth: u64) -> bool {
        self.path == path && (nth == self.nth || (self.persistent && nth > self.nth))
    }
}

/// Verdict for one timed read, combining failure and corruption faults.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadOutcome {
    /// Deliver the true bytes.
    Clean,
    /// Fail this read (the `nth` of its path) with an injected I/O error.
    Fail { nth: u64 },
    /// Deliver byte-flipped data for this read (the `nth` of its path).
    /// When `silent`, the storage layer must pass the bad bytes through;
    /// otherwise its own checksum detects the flip.
    Corrupt { nth: u64, silent: bool },
    /// This read (the `nth` of its path) never completes: the storage layer
    /// must drop its completion callback without scheduling anything, so
    /// only a caller-side deadline can recover.
    Hang { nth: u64 },
}

impl FaultPlan {
    /// The empty plan (no faults).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// True when the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.node_kills.is_empty()
            && self.read_faults.is_empty()
            && self.slow_nodes.is_empty()
            && self.read_fail_prob == 0.0
            && self.corrupt_reads.is_empty()
            && self.node_hangs.is_empty()
            && self.read_hangs.is_empty()
            && self.partitions.is_empty()
            && self.slow_links.is_empty()
    }

    /// Check the plan for structurally invalid entries (bad straggler and
    /// link factors, negative times, empty or backwards partition windows).
    /// Returns the first problem found. [`FaultInjector::install`]
    /// debug-asserts this and clamps offenders to no-ops in release.
    pub fn validate(&self) -> Result<(), FaultPlanError> {
        for &(node, factor) in &self.slow_nodes {
            if !(factor > 0.0 && factor.is_finite()) {
                return Err(FaultPlanError::BadSlowFactor { node, factor });
            }
        }
        for &(a, b, factor) in &self.slow_links {
            if !(factor > 0.0 && factor.is_finite()) {
                return Err(FaultPlanError::BadLinkFactor { a, b, factor });
            }
        }
        for &(_, at_s) in &self.node_kills {
            if !(at_s >= 0.0 && at_s.is_finite()) {
                return Err(FaultPlanError::BadTime {
                    what: "kill_node",
                    at_s,
                });
            }
        }
        for &(_, at_s) in &self.node_hangs {
            if !(at_s >= 0.0 && at_s.is_finite()) {
                return Err(FaultPlanError::BadTime {
                    what: "hang_node",
                    at_s,
                });
            }
        }
        for p in &self.partitions {
            if p.nodes.is_empty() {
                return Err(FaultPlanError::EmptyPartitionGroup);
            }
            // `heal_at_s` may be +inf (never heals) but must come strictly
            // after a finite, non-negative start.
            if !(p.from_s >= 0.0 && p.from_s.is_finite() && p.heal_at_s > p.from_s) {
                return Err(FaultPlanError::BadPartitionWindow {
                    from_s: p.from_s,
                    heal_at_s: p.heal_at_s,
                });
            }
        }
        Ok(())
    }

    /// Kill `node` at virtual time `at_s`.
    pub fn kill_node(mut self, node: u32, at_s: f64) -> FaultPlan {
        self.node_kills.push((node, at_s));
        self
    }

    /// Set the seed driving probabilistic read failures and the corruption
    /// byte patterns (which byte flips, and with what mask).
    pub fn with_seed(mut self, seed: u64) -> FaultPlan {
        self.seed = seed;
        self
    }

    /// Fail the `nth` (1-based) timed read of `path`.
    pub fn fail_read(mut self, path: impl Into<String>, nth: u64) -> FaultPlan {
        self.read_faults.push((path.into(), nth));
        self
    }

    /// Slow compute on `node` by `factor` (> 1 = straggler). A NaN, zero,
    /// or negative factor is rejected by [`FaultPlan::validate`] when the
    /// plan is installed, not silently accepted here.
    pub fn slow_node(mut self, node: u32, factor: f64) -> FaultPlan {
        self.slow_nodes.push((node, factor));
        self
    }

    /// Hang compute on `node` from virtual time `at_s`: attempts running
    /// there never complete (unlike a straggler, which finishes late).
    pub fn hang_node(mut self, node: u32, at_s: f64) -> FaultPlan {
        self.node_hangs.push((node, at_s));
        self
    }

    /// Hang the `nth` (1-based) timed read of `path`: its completion
    /// callback is never invoked.
    pub fn hang_nth_read(mut self, path: impl Into<String>, nth: u64) -> FaultPlan {
        self.read_hangs.push((path.into(), nth));
        self
    }

    /// Partition `nodes` away from the rest of the cluster (and the driver)
    /// over `[from_s, heal_at_s)`. Pass `f64::INFINITY` to never heal.
    pub fn partition(mut self, nodes: &[u32], from_s: f64, heal_at_s: f64) -> FaultPlan {
        self.partitions.push(PartitionSpec {
            nodes: nodes.to_vec(),
            from_s,
            heal_at_s,
        });
        self
    }

    /// Degrade the undirected link between nodes `a` and `b`: transfers
    /// crossing it take `factor`× as long (> 1 = slow link).
    pub fn slow_link(mut self, a: u32, b: u32, factor: f64) -> FaultPlan {
        self.slow_links.push((a, b, factor));
        self
    }

    /// Fail each timed read independently with probability `prob`, drawn
    /// from a PRNG seeded with `seed`.
    pub fn with_random_read_failures(mut self, seed: u64, prob: f64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&prob), "probability out of range");
        self.seed = seed;
        self.read_fail_prob = prob;
        self
    }

    /// Silently flip one byte of the `nth` (1-based) timed read of `path`.
    /// A transient flip: the re-read fetches clean bytes, so an end-to-end
    /// checksum can detect *and repair* it.
    pub fn corrupt_read(mut self, path: impl Into<String>, nth: u64) -> FaultPlan {
        self.corrupt_reads.push(CorruptSpec {
            path: path.into(),
            nth,
            silent: true,
            persistent: false,
            replica: None,
        });
        self
    }

    /// Flip one byte of the `nth` timed read of `path`, caught by the
    /// storage layer's own checksum (a detected stripe-read corruption —
    /// surfaces as a typed error instead of bad bytes).
    pub fn corrupt_read_detected(mut self, path: impl Into<String>, nth: u64) -> FaultPlan {
        self.corrupt_reads.push(CorruptSpec {
            path: path.into(),
            nth,
            silent: false,
            persistent: false,
            replica: None,
        });
        self
    }

    /// Silently corrupt *every* read of `path` from the `nth` onward (media
    /// corruption: re-reading cannot repair it, so integrity handling must
    /// quarantine and fail rather than return wrong data).
    pub fn corrupt_read_persistent(mut self, path: impl Into<String>, nth: u64) -> FaultPlan {
        self.corrupt_reads.push(CorruptSpec {
            path: path.into(),
            nth,
            silent: true,
            persistent: true,
            replica: None,
        });
        self
    }

    /// Corrupt, at rest, the copy of HDFS block `block_key` held by
    /// `node` (single-replica corruption — reads served by other replicas
    /// stay clean, so replica fallback repairs the read).
    pub fn corrupt_replica(mut self, block_key: impl Into<String>, node: u32) -> FaultPlan {
        self.corrupt_reads.push(CorruptSpec {
            path: block_key.into(),
            nth: 1,
            silent: true,
            persistent: true,
            replica: Some(node),
        });
        self
    }

    /// Corrupt every replica of HDFS block `block_key` — no clean copy
    /// remains, so the read must fail with an integrity error.
    pub fn corrupt_all_replicas(mut self, block_key: impl Into<String>) -> FaultPlan {
        self.corrupt_reads.push(CorruptSpec {
            path: block_key.into(),
            nth: 1,
            silent: true,
            persistent: true,
            replica: None,
        });
        self
    }
}

/// Runtime interpreter of a [`FaultPlan`], owned by the simulator.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    read_counts: HashMap<String, u64>,
    rng: scirng::Rng,
    injected: u64,
    corrupted: u64,
    hung: u64,
}

impl Default for FaultInjector {
    fn default() -> Self {
        FaultInjector {
            plan: FaultPlan::none(),
            read_counts: HashMap::new(),
            rng: scirng::Rng::seed_from_u64(0),
            injected: 0,
            corrupted: 0,
            hung: 0,
        }
    }
}

impl FaultInjector {
    /// Install a plan, resetting all per-run state (read counters, PRNG).
    ///
    /// Invalid entries ([`FaultPlan::validate`]) are a caller bug: debug
    /// builds panic with the typed error; release builds clamp each
    /// offender to a no-op (factor → 1.0, negative time → 0.0, empty or
    /// backwards partition window → dropped) rather than inject garbage.
    pub fn install(&mut self, plan: FaultPlan) {
        debug_assert!(
            plan.validate().is_ok(),
            "invalid fault plan: {}",
            plan.validate().unwrap_err()
        );
        let plan = Self::clamp(plan);
        self.rng = scirng::Rng::seed_from_u64(plan.seed);
        self.read_counts.clear();
        self.injected = 0;
        self.corrupted = 0;
        self.hung = 0;
        self.plan = plan;
    }

    /// Release-build defence for invalid plan entries (see
    /// [`FaultInjector::install`]).
    fn clamp(mut plan: FaultPlan) -> FaultPlan {
        for (_, f) in &mut plan.slow_nodes {
            if !(*f > 0.0 && f.is_finite()) {
                *f = 1.0;
            }
        }
        for (_, _, f) in &mut plan.slow_links {
            if !(*f > 0.0 && f.is_finite()) {
                *f = 1.0;
            }
        }
        for (_, t) in plan.node_kills.iter_mut().chain(plan.node_hangs.iter_mut()) {
            if !(*t >= 0.0 && t.is_finite()) {
                *t = 0.0;
            }
        }
        plan.partitions.retain(|p| {
            !p.nodes.is_empty() && p.from_s >= 0.0 && p.from_s.is_finite() && p.heal_at_s > p.from_s
        });
        plan
    }

    /// The installed plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Total read failures injected so far (diagnostics).
    pub fn injected_read_failures(&self) -> u64 {
        self.injected
    }

    /// Total corrupted deliveries injected so far (diagnostics).
    pub fn injected_corruptions(&self) -> u64 {
        self.corrupted
    }

    /// Total reads hung so far (diagnostics).
    pub fn injected_read_hangs(&self) -> u64 {
        self.hung
    }

    /// Record one timed read of `path`; returns `Some(nth)` when this read
    /// must fail (either a planned `(path, nth)` fault or a probabilistic
    /// one). Called by the storage clients at the top of every timed read.
    pub fn take_read_fault(&mut self, path: &str) -> Option<u64> {
        match self.take_read_outcome(path) {
            ReadOutcome::Fail { nth } => Some(nth),
            _ => None,
        }
    }

    /// Record one timed read of `path` and return its full verdict —
    /// failure, hang, corruption, or clean delivery. Fault precedence:
    /// planned nth-read failures, then hangs, then corruption specs, then
    /// probabilistic failures (which draw from the seeded PRNG exactly as
    /// in plans without corruption, preserving their fault sequences).
    pub fn take_read_outcome(&mut self, path: &str) -> ReadOutcome {
        if self.plan.is_empty() {
            return ReadOutcome::Clean;
        }
        let n = self.read_counts.entry(path.to_string()).or_insert(0);
        *n += 1;
        let nth = *n;
        if self
            .plan
            .read_faults
            .iter()
            .any(|(p, k)| *k == nth && p == path)
        {
            self.injected += 1;
            return ReadOutcome::Fail { nth };
        }
        if self
            .plan
            .read_hangs
            .iter()
            .any(|(p, k)| *k == nth && p == path)
        {
            self.hung += 1;
            return ReadOutcome::Hang { nth };
        }
        if let Some(spec) = self
            .plan
            .corrupt_reads
            .iter()
            .find(|s| s.replica.is_none() && s.matches(path, nth))
        {
            let silent = spec.silent;
            self.corrupted += 1;
            return ReadOutcome::Corrupt { nth, silent };
        }
        if self.plan.read_fail_prob > 0.0 && self.rng.f64() < self.plan.read_fail_prob {
            self.injected += 1;
            return ReadOutcome::Fail { nth };
        }
        ReadOutcome::Clean
    }

    /// Record one logical HDFS block read of `block_key`, returning its
    /// 1-based sequence number. Replica attempts within the read then query
    /// [`FaultInjector::replica_corrupt`] with this number. Deliberately
    /// does not consult failure faults or the PRNG — block-level failure
    /// injection stays at the path level where PR 2 put it.
    pub fn begin_block_read(&mut self, block_key: &str) -> u64 {
        if self.plan.corrupt_reads.is_empty() {
            return 0;
        }
        let n = self.read_counts.entry(block_key.to_string()).or_insert(0);
        *n += 1;
        *n
    }

    /// Whether the copy of `block_key` served by `node` arrives corrupted
    /// on the `nth` logical read (from [`FaultInjector::begin_block_read`]).
    pub fn replica_corrupt(&mut self, block_key: &str, nth: u64, node: u32) -> bool {
        let hit =
            self.plan.corrupt_reads.iter().any(|s| {
                (s.replica.is_none() || s.replica == Some(node)) && s.matches(block_key, nth)
            });
        if hit {
            self.corrupted += 1;
        }
        hit
    }

    /// Deterministic byte-flip pattern for a corrupt delivery of `path`'s
    /// `nth` read: `(position selector, xor mask)`. The flipping layer
    /// applies `data[selector % len] ^= mask`. Derived purely from the plan
    /// seed, the path, and `nth` — not from the live PRNG stream — so the
    /// same plan corrupts the same byte on every run.
    pub fn corruption_pattern(&self, path: &str, nth: u64) -> (u64, u8) {
        let mut s = self
            .plan
            .seed
            .wrapping_add(scirng::hash64(path.as_bytes()))
            .wrapping_add(nth.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let selector = scirng::splitmix64(&mut s);
        let mask = (scirng::splitmix64(&mut s) as u8) | 1;
        (selector, mask)
    }

    /// When (if ever) `node` is scheduled to die. With duplicate entries the
    /// earliest kill wins.
    pub fn kill_time(&self, node: u32) -> Option<f64> {
        self.plan
            .node_kills
            .iter()
            .filter(|(n, _)| *n == node)
            .map(|(_, t)| *t)
            .fold(None, |acc, t| Some(acc.map_or(t, |a: f64| a.min(t))))
    }

    /// Whether `node` is dead at virtual time `now`.
    pub fn node_dead(&self, node: u32, now: f64) -> bool {
        self.kill_time(node).is_some_and(|t| t <= now)
    }

    /// Compute slowdown factor for `node` (1.0 = healthy).
    pub fn slow_factor(&self, node: u32) -> f64 {
        self.plan
            .slow_nodes
            .iter()
            .filter(|(n, _)| *n == node)
            .map(|(_, f)| *f)
            .fold(1.0, |acc, f| acc * f)
    }

    /// When (if ever) `node` starts hanging. With duplicate entries the
    /// earliest hang wins.
    pub fn hang_time(&self, node: u32) -> Option<f64> {
        self.plan
            .node_hangs
            .iter()
            .filter(|(n, _)| *n == node)
            .map(|(_, t)| *t)
            .fold(None, |acc, t| Some(acc.map_or(t, |a: f64| a.min(t))))
    }

    /// Whether `node` is hung at virtual time `now` (work started on it
    /// never completes; the node still exists, unlike a killed node).
    pub fn node_hung(&self, node: u32, now: f64) -> bool {
        self.hang_time(node).is_some_and(|t| t <= now)
    }

    /// Whether nodes `a` and `b` are on opposite sides of an active
    /// partition at virtual time `now` (exactly one of them is inside an
    /// isolated group).
    pub fn partitioned(&self, a: u32, b: u32, now: f64) -> bool {
        self.plan
            .partitions
            .iter()
            .any(|p| p.active(now) && (p.nodes.contains(&a) != p.nodes.contains(&b)))
    }

    /// Whether `node` is inside an active partitioned group at `now` —
    /// i.e. unreachable from the driver and the rest of the cluster.
    pub fn partition_isolated(&self, node: u32, now: f64) -> bool {
        self.plan
            .partitions
            .iter()
            .any(|p| p.active(now) && p.nodes.contains(&node))
    }

    /// The earliest heal time among partitions isolating `node` that are
    /// active at `now` (`None` if the node is not isolated). A finite value
    /// tells the failure detector when to re-probe for reinstatement.
    pub fn partition_heal_time(&self, node: u32, now: f64) -> Option<f64> {
        self.plan
            .partitions
            .iter()
            .filter(|p| p.active(now) && p.nodes.contains(&node))
            .map(|p| p.heal_at_s)
            .fold(None, |acc, t| Some(acc.map_or(t, |a: f64| a.min(t))))
    }

    /// Bandwidth-degradation factor for the undirected link between `a`
    /// and `b` (1.0 = healthy; transfers take `factor`× as long).
    pub fn link_slowdown(&self, a: u32, b: u32) -> f64 {
        self.plan
            .slow_links
            .iter()
            .filter(|(x, y, _)| (*x == a && *y == b) || (*x == b && *y == a))
            .map(|(_, _, f)| *f)
            .fold(1.0, |acc, f| acc * f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let mut inj = FaultInjector::default();
        for _ in 0..100 {
            assert_eq!(inj.take_read_fault("p"), None);
        }
        assert!(!inj.node_dead(0, 1e9));
        assert_eq!(inj.slow_factor(3), 1.0);
        assert_eq!(inj.injected_read_failures(), 0);
    }

    #[test]
    fn nth_read_fault_fires_exactly_once() {
        let mut inj = FaultInjector::default();
        inj.install(FaultPlan::none().fail_read("f", 3));
        assert_eq!(inj.take_read_fault("f"), None);
        assert_eq!(inj.take_read_fault("g"), None);
        assert_eq!(inj.take_read_fault("f"), None);
        assert_eq!(inj.take_read_fault("f"), Some(3));
        assert_eq!(inj.take_read_fault("f"), None);
        assert_eq!(inj.injected_read_failures(), 1);
    }

    #[test]
    fn probabilistic_faults_are_seed_deterministic() {
        let run = |seed| {
            let mut inj = FaultInjector::default();
            inj.install(FaultPlan::none().with_random_read_failures(seed, 0.3));
            (0..200)
                .map(|i| inj.take_read_fault(&format!("p{}", i % 5)).is_some())
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should differ");
        assert!(run(7).iter().any(|&b| b), "some faults should fire");
        assert!(!run(7).iter().all(|&b| b), "not every read fails");
    }

    #[test]
    fn kill_time_and_slow_factor() {
        let mut inj = FaultInjector::default();
        inj.install(
            FaultPlan::none()
                .kill_node(2, 50.0)
                .kill_node(2, 10.0)
                .slow_node(1, 4.0),
        );
        assert_eq!(inj.kill_time(2), Some(10.0), "earliest kill wins");
        assert_eq!(inj.kill_time(0), None);
        assert!(!inj.node_dead(2, 9.9));
        assert!(inj.node_dead(2, 10.0));
        assert_eq!(inj.slow_factor(1), 4.0);
        assert_eq!(inj.slow_factor(2), 1.0);
    }

    #[test]
    fn install_resets_counts() {
        let mut inj = FaultInjector::default();
        inj.install(FaultPlan::none().fail_read("f", 1));
        assert!(inj.take_read_fault("f").is_some());
        inj.install(FaultPlan::none().fail_read("f", 1));
        assert!(inj.take_read_fault("f").is_some(), "counts were reset");
    }

    #[test]
    fn transient_corruption_hits_only_the_nth_read() {
        let mut inj = FaultInjector::default();
        inj.install(FaultPlan::none().corrupt_read("f", 2));
        assert_eq!(inj.take_read_outcome("f"), ReadOutcome::Clean);
        assert_eq!(
            inj.take_read_outcome("f"),
            ReadOutcome::Corrupt {
                nth: 2,
                silent: true
            }
        );
        assert_eq!(
            inj.take_read_outcome("f"),
            ReadOutcome::Clean,
            "re-read is clean"
        );
        assert_eq!(inj.take_read_outcome("g"), ReadOutcome::Clean);
        assert_eq!(inj.injected_corruptions(), 1);
        assert_eq!(inj.injected_read_failures(), 0);
    }

    #[test]
    fn persistent_corruption_hits_every_read_from_nth() {
        let mut inj = FaultInjector::default();
        inj.install(FaultPlan::none().corrupt_read_persistent("f", 2));
        assert_eq!(inj.take_read_outcome("f"), ReadOutcome::Clean);
        for nth in 2..6 {
            assert_eq!(
                inj.take_read_outcome("f"),
                ReadOutcome::Corrupt { nth, silent: true },
                "read {nth} stays corrupt"
            );
        }
    }

    #[test]
    fn detected_corruption_is_not_silent() {
        let mut inj = FaultInjector::default();
        inj.install(FaultPlan::none().corrupt_read_detected("f", 1));
        assert_eq!(
            inj.take_read_outcome("f"),
            ReadOutcome::Corrupt {
                nth: 1,
                silent: false
            }
        );
    }

    #[test]
    fn planned_failure_outranks_corruption() {
        let mut inj = FaultInjector::default();
        inj.install(FaultPlan::none().fail_read("f", 1).corrupt_read("f", 1));
        assert_eq!(inj.take_read_outcome("f"), ReadOutcome::Fail { nth: 1 });
    }

    #[test]
    fn replica_scope_limits_corruption_to_one_node() {
        let mut inj = FaultInjector::default();
        inj.install(FaultPlan::none().corrupt_replica("blk#7", 2));
        let nth = inj.begin_block_read("blk#7");
        assert_eq!(nth, 1);
        assert!(inj.replica_corrupt("blk#7", nth, 2), "replica 2 is corrupt");
        assert!(!inj.replica_corrupt("blk#7", nth, 0), "replica 0 is clean");
        assert!(!inj.replica_corrupt("blk#9", nth, 2), "other blocks clean");

        inj.install(FaultPlan::none().corrupt_all_replicas("blk#7"));
        let nth = inj.begin_block_read("blk#7");
        assert!(inj.replica_corrupt("blk#7", nth, 0));
        assert!(inj.replica_corrupt("blk#7", nth, 1));
    }

    #[test]
    fn replica_corruption_is_invisible_to_path_reads() {
        // A replica-scoped spec must not corrupt plain path-level reads.
        let mut inj = FaultInjector::default();
        inj.install(FaultPlan::none().corrupt_replica("f", 1));
        assert_eq!(inj.take_read_outcome("f"), ReadOutcome::Clean);
    }

    #[test]
    fn corruption_pattern_is_stable_and_distinct() {
        let mut inj = FaultInjector::default();
        inj.install(FaultPlan::none().with_random_read_failures(9, 0.0));
        let a = inj.corruption_pattern("f", 1);
        assert_eq!(a, inj.corruption_pattern("f", 1), "same inputs, same flip");
        assert_ne!(a, inj.corruption_pattern("f", 2));
        assert_ne!(a, inj.corruption_pattern("g", 1));
        assert_ne!(a.1, 0, "xor mask always flips at least one bit");
        // Drawing from the live PRNG must not perturb the pattern.
        let before = inj.corruption_pattern("h", 3);
        inj.take_read_outcome("h");
        assert_eq!(before, inj.corruption_pattern("h", 3));
    }

    #[test]
    fn hang_nth_read_fires_exactly_once() {
        let mut inj = FaultInjector::default();
        inj.install(FaultPlan::none().hang_nth_read("f", 2));
        assert_eq!(inj.take_read_outcome("f"), ReadOutcome::Clean);
        assert_eq!(inj.take_read_outcome("f"), ReadOutcome::Hang { nth: 2 });
        assert_eq!(inj.take_read_outcome("f"), ReadOutcome::Clean);
        assert_eq!(inj.take_read_outcome("g"), ReadOutcome::Clean);
        assert_eq!(inj.injected_read_hangs(), 1);
        assert_eq!(inj.injected_read_failures(), 0);
    }

    #[test]
    fn planned_failure_outranks_hang() {
        let mut inj = FaultInjector::default();
        inj.install(FaultPlan::none().fail_read("f", 1).hang_nth_read("f", 1));
        assert_eq!(inj.take_read_outcome("f"), ReadOutcome::Fail { nth: 1 });
    }

    #[test]
    fn hang_node_earliest_wins() {
        let mut inj = FaultInjector::default();
        inj.install(FaultPlan::none().hang_node(1, 30.0).hang_node(1, 12.0));
        assert_eq!(inj.hang_time(1), Some(12.0));
        assert_eq!(inj.hang_time(0), None);
        assert!(!inj.node_hung(1, 11.9));
        assert!(inj.node_hung(1, 12.0));
        assert!(!inj.node_hung(0, 1e9));
    }

    #[test]
    fn partition_window_and_sides() {
        let mut inj = FaultInjector::default();
        inj.install(FaultPlan::none().partition(&[1, 2], 10.0, 20.0));
        // Outside the window: fully connected.
        assert!(!inj.partitioned(0, 1, 9.9));
        assert!(!inj.partitioned(0, 1, 20.0), "heal time is exclusive");
        // Inside the window: group vs rest are cut, intra-group links live.
        assert!(inj.partitioned(0, 1, 10.0));
        assert!(inj.partitioned(3, 2, 15.0));
        assert!(!inj.partitioned(1, 2, 15.0), "same side stays connected");
        assert!(!inj.partitioned(0, 3, 15.0), "same side stays connected");
        assert!(inj.partition_isolated(1, 15.0));
        assert!(!inj.partition_isolated(0, 15.0));
        assert_eq!(inj.partition_heal_time(1, 15.0), Some(20.0));
        assert_eq!(inj.partition_heal_time(1, 25.0), None);
    }

    #[test]
    fn never_healing_partition() {
        let mut inj = FaultInjector::default();
        inj.install(FaultPlan::none().partition(&[2], 5.0, f64::INFINITY));
        assert!(inj.partition_isolated(2, 1e12));
        assert_eq!(inj.partition_heal_time(2, 6.0), Some(f64::INFINITY));
    }

    #[test]
    fn link_slowdown_is_undirected() {
        let mut inj = FaultInjector::default();
        inj.install(FaultPlan::none().slow_link(0, 2, 3.0));
        assert_eq!(inj.link_slowdown(0, 2), 3.0);
        assert_eq!(inj.link_slowdown(2, 0), 3.0);
        assert_eq!(inj.link_slowdown(0, 1), 1.0);
    }

    #[test]
    fn validate_rejects_bad_entries_typed() {
        assert_eq!(
            FaultPlan::none().slow_node(1, 0.0).validate(),
            Err(FaultPlanError::BadSlowFactor {
                node: 1,
                factor: 0.0
            })
        );
        assert!(matches!(
            FaultPlan::none().slow_node(1, f64::NAN).validate(),
            Err(FaultPlanError::BadSlowFactor { node: 1, .. })
        ));
        assert_eq!(
            FaultPlan::none().slow_link(0, 1, -2.0).validate(),
            Err(FaultPlanError::BadLinkFactor {
                a: 0,
                b: 1,
                factor: -2.0
            })
        );
        assert_eq!(
            FaultPlan::none().kill_node(0, -1.0).validate(),
            Err(FaultPlanError::BadTime {
                what: "kill_node",
                at_s: -1.0
            })
        );
        assert_eq!(
            FaultPlan::none().hang_node(0, f64::NEG_INFINITY).validate(),
            Err(FaultPlanError::BadTime {
                what: "hang_node",
                at_s: f64::NEG_INFINITY
            })
        );
        assert_eq!(
            FaultPlan::none().partition(&[0], 10.0, 10.0).validate(),
            Err(FaultPlanError::BadPartitionWindow {
                from_s: 10.0,
                heal_at_s: 10.0
            })
        );
        assert_eq!(
            FaultPlan::none().partition(&[0], 10.0, 5.0).validate(),
            Err(FaultPlanError::BadPartitionWindow {
                from_s: 10.0,
                heal_at_s: 5.0
            })
        );
        assert_eq!(
            FaultPlan::none().partition(&[], 0.0, 1.0).validate(),
            Err(FaultPlanError::EmptyPartitionGroup)
        );
        assert_eq!(FaultPlan::none().slow_node(1, 2.5).validate(), Ok(()));
        assert_eq!(
            FaultPlan::none()
                .partition(&[1], 0.0, f64::INFINITY)
                .validate(),
            Ok(())
        );
    }

    #[test]
    fn clamp_neutralises_invalid_entries() {
        // Release-path behaviour: invalid entries become no-ops rather than
        // injecting garbage. Exercised directly (install would debug-panic).
        let plan = FaultPlan::none()
            .slow_node(1, f64::NAN)
            .slow_link(0, 1, -3.0)
            .kill_node(2, -5.0)
            .partition(&[0], 8.0, 2.0);
        let clamped = FaultInjector::clamp(plan);
        assert_eq!(clamped.slow_nodes, vec![(1, 1.0)]);
        assert_eq!(clamped.slow_links, vec![(0, 1, 1.0)]);
        assert_eq!(clamped.node_kills, vec![(2, 0.0)]);
        assert!(clamped.partitions.is_empty());
        assert_eq!(clamped.validate(), Ok(()));
    }

    #[test]
    fn corruption_does_not_shift_probabilistic_failures() {
        // The probabilistic fault sequence for reads unaffected by
        // corruption specs must be identical with and without them.
        let run = |with_corruption: bool| {
            let mut plan = FaultPlan::none().with_random_read_failures(11, 0.3);
            if with_corruption {
                plan = plan.corrupt_read("other", 999);
            }
            let mut inj = FaultInjector::default();
            inj.install(plan);
            (0..100)
                .map(|_| matches!(inj.take_read_outcome("p"), ReadOutcome::Fail { .. }))
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(false), run(true));
    }
}
