//! Deterministic fault injection.
//!
//! A [`FaultPlan`] declares, up front and in full, every fault one run will
//! experience: nodes killed at fixed virtual times, specific reads that
//! fail, straggler nodes, and a seeded per-read failure probability. The
//! plan is interpreted by a [`FaultInjector`] owned by the [`crate::Sim`],
//! so every layer (PFS client, HDFS client, the MapReduce driver) consults
//! the *same* state. Because the plan is data and the probabilistic
//! failures are drawn from a [`scirng::Rng`] seeded from the plan, the same
//! seed + the same plan reproduce bit-identical fault sequences — and,
//! since the simulator itself is deterministic, bit-identical timings.

use std::collections::HashMap;

/// A declarative, seeded description of the faults to inject into one run.
///
/// The default plan is empty (no faults); [`FaultInjector::take_read_fault`]
/// short-circuits in that case so fault-free runs pay nothing.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// `(node, at_s)`: kill compute node `node` at virtual time `at_s`.
    /// A dead node loses its task slots, its running attempts, and its
    /// HDFS replicas.
    pub node_kills: Vec<(u32, f64)>,
    /// `(path, nth)`: fail the `nth` (1-based) timed read of `path`.
    pub read_faults: Vec<(String, u64)>,
    /// `(node, factor)`: multiply compute time on `node` by `factor`
    /// (a straggler; speculation exists to absorb these).
    pub slow_nodes: Vec<(u32, f64)>,
    /// Independently fail each timed read with this probability.
    pub read_fail_prob: f64,
    /// Seed for the probabilistic read failures.
    pub seed: u64,
}

impl FaultPlan {
    /// The empty plan (no faults).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// True when the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.node_kills.is_empty()
            && self.read_faults.is_empty()
            && self.slow_nodes.is_empty()
            && self.read_fail_prob == 0.0
    }

    /// Kill `node` at virtual time `at_s`.
    pub fn kill_node(mut self, node: u32, at_s: f64) -> FaultPlan {
        self.node_kills.push((node, at_s));
        self
    }

    /// Fail the `nth` (1-based) timed read of `path`.
    pub fn fail_read(mut self, path: impl Into<String>, nth: u64) -> FaultPlan {
        self.read_faults.push((path.into(), nth));
        self
    }

    /// Slow compute on `node` by `factor` (> 1 = straggler).
    pub fn slow_node(mut self, node: u32, factor: f64) -> FaultPlan {
        assert!(factor > 0.0 && factor.is_finite(), "bad slow factor");
        self.slow_nodes.push((node, factor));
        self
    }

    /// Fail each timed read independently with probability `prob`, drawn
    /// from a PRNG seeded with `seed`.
    pub fn with_random_read_failures(mut self, seed: u64, prob: f64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&prob), "probability out of range");
        self.seed = seed;
        self.read_fail_prob = prob;
        self
    }
}

/// Runtime interpreter of a [`FaultPlan`], owned by the simulator.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    read_counts: HashMap<String, u64>,
    rng: scirng::Rng,
    injected: u64,
}

impl Default for FaultInjector {
    fn default() -> Self {
        FaultInjector {
            plan: FaultPlan::none(),
            read_counts: HashMap::new(),
            rng: scirng::Rng::seed_from_u64(0),
            injected: 0,
        }
    }
}

impl FaultInjector {
    /// Install a plan, resetting all per-run state (read counters, PRNG).
    pub fn install(&mut self, plan: FaultPlan) {
        self.rng = scirng::Rng::seed_from_u64(plan.seed);
        self.read_counts.clear();
        self.injected = 0;
        self.plan = plan;
    }

    /// The installed plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Total read failures injected so far (diagnostics).
    pub fn injected_read_failures(&self) -> u64 {
        self.injected
    }

    /// Record one timed read of `path`; returns `Some(nth)` when this read
    /// must fail (either a planned `(path, nth)` fault or a probabilistic
    /// one). Called by the storage clients at the top of every timed read.
    pub fn take_read_fault(&mut self, path: &str) -> Option<u64> {
        if self.plan.is_empty() {
            return None;
        }
        let n = self.read_counts.entry(path.to_string()).or_insert(0);
        *n += 1;
        let nth = *n;
        if self
            .plan
            .read_faults
            .iter()
            .any(|(p, k)| *k == nth && p == path)
        {
            self.injected += 1;
            return Some(nth);
        }
        if self.plan.read_fail_prob > 0.0 && self.rng.f64() < self.plan.read_fail_prob {
            self.injected += 1;
            return Some(nth);
        }
        None
    }

    /// When (if ever) `node` is scheduled to die. With duplicate entries the
    /// earliest kill wins.
    pub fn kill_time(&self, node: u32) -> Option<f64> {
        self.plan
            .node_kills
            .iter()
            .filter(|(n, _)| *n == node)
            .map(|(_, t)| *t)
            .fold(None, |acc, t| Some(acc.map_or(t, |a: f64| a.min(t))))
    }

    /// Whether `node` is dead at virtual time `now`.
    pub fn node_dead(&self, node: u32, now: f64) -> bool {
        self.kill_time(node).is_some_and(|t| t <= now)
    }

    /// Compute slowdown factor for `node` (1.0 = healthy).
    pub fn slow_factor(&self, node: u32) -> f64 {
        self.plan
            .slow_nodes
            .iter()
            .filter(|(n, _)| *n == node)
            .map(|(_, f)| *f)
            .fold(1.0, |acc, f| acc * f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let mut inj = FaultInjector::default();
        for _ in 0..100 {
            assert_eq!(inj.take_read_fault("p"), None);
        }
        assert!(!inj.node_dead(0, 1e9));
        assert_eq!(inj.slow_factor(3), 1.0);
        assert_eq!(inj.injected_read_failures(), 0);
    }

    #[test]
    fn nth_read_fault_fires_exactly_once() {
        let mut inj = FaultInjector::default();
        inj.install(FaultPlan::none().fail_read("f", 3));
        assert_eq!(inj.take_read_fault("f"), None);
        assert_eq!(inj.take_read_fault("g"), None);
        assert_eq!(inj.take_read_fault("f"), None);
        assert_eq!(inj.take_read_fault("f"), Some(3));
        assert_eq!(inj.take_read_fault("f"), None);
        assert_eq!(inj.injected_read_failures(), 1);
    }

    #[test]
    fn probabilistic_faults_are_seed_deterministic() {
        let run = |seed| {
            let mut inj = FaultInjector::default();
            inj.install(FaultPlan::none().with_random_read_failures(seed, 0.3));
            (0..200)
                .map(|i| inj.take_read_fault(&format!("p{}", i % 5)).is_some())
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should differ");
        assert!(run(7).iter().any(|&b| b), "some faults should fire");
        assert!(!run(7).iter().all(|&b| b), "not every read fails");
    }

    #[test]
    fn kill_time_and_slow_factor() {
        let mut inj = FaultInjector::default();
        inj.install(
            FaultPlan::none()
                .kill_node(2, 50.0)
                .kill_node(2, 10.0)
                .slow_node(1, 4.0),
        );
        assert_eq!(inj.kill_time(2), Some(10.0), "earliest kill wins");
        assert_eq!(inj.kill_time(0), None);
        assert!(!inj.node_dead(2, 9.9));
        assert!(inj.node_dead(2, 10.0));
        assert_eq!(inj.slow_factor(1), 4.0);
        assert_eq!(inj.slow_factor(2), 1.0);
    }

    #[test]
    fn install_resets_counts() {
        let mut inj = FaultInjector::default();
        inj.install(FaultPlan::none().fail_read("f", 1));
        assert!(inj.take_read_fault("f").is_some());
        inj.install(FaultPlan::none().fail_read("f", 1));
        assert!(inj.take_read_fault("f").is_some(), "counts were reset");
    }
}
