//! The discrete-event engine: an ordered queue of scheduled closures plus
//! the glue that turns [`FlowNet`] rate changes into completion events.
//!
//! Flow completions are driven by a *single* outstanding prediction event:
//! after every rate recomputation only the earliest finishing flow gets an
//! event (epoch-guarded against staleness). When it fires, every flow that
//! has drained completes, rates are recomputed once, and the next
//! prediction is scheduled. This keeps the queue O(1) in the number of
//! active flows — important for experiments with thousands of concurrent
//! transfers.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use crate::cost::CostModel;
use crate::fault::FaultInjector;
use crate::flow::{FlowId, FlowNet, ResourceId};
use crate::time::SimTime;

type Callback = Box<dyn FnOnce(&mut Sim)>;

/// Heap key: earliest time first, FIFO among equal times.
#[derive(PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    time: SimTime,
    seq: u64,
}

enum EventKind {
    /// Run an arbitrary closure.
    Call(Callback),
    /// The earliest predicted flow completion, valid only if `epoch` is
    /// current.
    FlowTick { epoch: u64 },
}

/// The simulator: virtual clock, event queue, flow network and cost model.
///
/// ```
/// use simnet::{Sim, SimTime};
/// let mut sim = Sim::new();
/// let r = sim.net.add_resource("disk", 100.0);
/// sim.start_flow(vec![r], 1000.0, |sim| {
///     assert_eq!(sim.now(), SimTime(10.0));
/// });
/// sim.run();
/// assert_eq!(sim.now(), SimTime(10.0));
/// ```
pub struct Sim {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<(Key, usize)>>,
    events: HashMap<usize, EventKind>,
    next_event: usize,
    /// The shared-resource flow model.
    pub net: FlowNet,
    /// Calibrated virtual costs for compute phases.
    pub cost: CostModel,
    /// Deterministic fault injection (empty plan by default).
    pub faults: FaultInjector,
    flow_callbacks: HashMap<FlowId, Callback>,
    events_processed: u64,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    pub fn new() -> Self {
        Self::with_cost(CostModel::default())
    }

    pub fn with_cost(cost: CostModel) -> Self {
        Sim {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            events: HashMap::new(),
            next_event: 0,
            net: FlowNet::new(),
            cost,
            faults: FaultInjector::default(),
            flow_callbacks: HashMap::new(),
            events_processed: 0,
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed so far (for diagnostics).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    fn push(&mut self, time: SimTime, kind: EventKind) {
        assert!(time.is_valid(), "scheduling at invalid time {time:?}");
        debug_assert!(time >= self.now, "scheduling into the past");
        let id = self.next_event;
        self.next_event += 1;
        self.seq += 1;
        self.events.insert(id, kind);
        self.queue.push(Reverse((
            Key {
                time,
                seq: self.seq,
            },
            id,
        )));
    }

    /// Schedule `cb` to run at absolute time `t` (must be ≥ now).
    pub fn at(&mut self, t: SimTime, cb: impl FnOnce(&mut Sim) + 'static) {
        self.push(t.max(self.now), EventKind::Call(Box::new(cb)));
    }

    /// Schedule `cb` to run `dt` seconds from now.
    pub fn after(&mut self, dt: f64, cb: impl FnOnce(&mut Sim) + 'static) {
        assert!(dt >= 0.0 && dt.is_finite(), "invalid delay {dt}");
        self.at(SimTime(self.now.0 + dt), cb);
    }

    /// Start a transfer of `bytes` along `path`; `done` runs when the last
    /// byte arrives. Returns the flow id (useful for diagnostics only —
    /// flows cannot be cancelled).
    pub fn start_flow(
        &mut self,
        path: Vec<ResourceId>,
        bytes: f64,
        done: impl FnOnce(&mut Sim) + 'static,
    ) -> FlowId {
        self.net.advance_to(self.now);
        let id = self.net.admit(path, bytes);
        self.flow_callbacks.insert(id, Box::new(done));
        self.reschedule_tick();
        id
    }

    /// Recompute fair-share rates and schedule one prediction event at the
    /// earliest completion under the new epoch.
    fn reschedule_tick(&mut self) {
        self.reschedule_tick_after(0.0);
    }

    /// Like [`Self::reschedule_tick`] but never earlier than `min_dt` from
    /// now (used to guarantee forward progress after rounding slivers).
    fn reschedule_tick_after(&mut self, min_dt: f64) {
        let etas = self.net.recompute_rates();
        let epoch = self.net.epoch;
        let base = self.net.last_update();
        let mut min_eta = f64::INFINITY;
        for (_, eta) in etas {
            if eta < min_eta {
                min_eta = eta;
            }
        }
        if min_eta.is_finite() {
            let t = SimTime(base.0 + min_eta)
                .max(self.now)
                .max(SimTime(self.now.0 + min_dt));
            self.push(t, EventKind::FlowTick { epoch });
        }
        // All-infinite (zero-rate) flows re-enter consideration on the next
        // admit; a drained queue with active flows is caught by `run`.
    }

    fn on_flow_tick(&mut self, epoch: u64) {
        if epoch != self.net.epoch {
            return; // superseded by a later recomputation
        }
        self.net.advance_to(self.now);
        let finished = self.net.take_finished();
        if finished.is_empty() {
            // Floating-point rounding left a sliver of bytes; predict again
            // from the current remainder, at least one nanosecond ahead so
            // virtual time always advances (livelock guard).
            self.reschedule_tick_after(1e-9);
            return;
        }
        let mut callbacks = Vec::with_capacity(finished.len());
        for id in finished {
            callbacks.push(
                self.flow_callbacks
                    .remove(&id)
                    // scilint::allow(p-expect, reason = "sim-state invariant: every flow registers its callback at start_flow; a miss means corrupt event state and must stop the run, not drop a completion")
                    .expect("completion callback present"),
            );
        }
        self.reschedule_tick();
        for cb in callbacks {
            cb(self);
        }
    }

    /// Process one event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(Reverse((key, id))) = self.queue.pop() else {
            return false;
        };
        let kind = self
            .events
            .remove(&id)
            // scilint::allow(p-expect, reason = "event-loop invariant: every queued id has exactly one payload; a miss means corrupt sim state and must stop the run, not skip an event")
            .expect("event payload present for queued id");
        debug_assert!(key.time >= self.now);
        self.now = key.time;
        self.events_processed += 1;
        match kind {
            EventKind::Call(cb) => cb(self),
            EventKind::FlowTick { epoch } => self.on_flow_tick(epoch),
        }
        true
    }

    /// Run until no events remain. Returns the final virtual time.
    ///
    /// Panics if flows remain active when the queue drains (that means some
    /// flow was permanently starved — a modelling bug in the caller).
    pub fn run(&mut self) -> SimTime {
        while self.step() {}
        assert_eq!(
            self.net.n_active_flows(),
            0,
            "simulation drained with {} flows still active",
            self.net.n_active_flows()
        );
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_run_in_time_order() {
        let mut sim = Sim::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for &t in &[3.0, 1.0, 2.0] {
            let log = log.clone();
            sim.at(SimTime(t), move |_| log.borrow_mut().push(t));
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn equal_times_run_fifo() {
        let mut sim = Sim::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for i in 0..5 {
            let log = log.clone();
            sim.at(SimTime(1.0), move |_| log.borrow_mut().push(i));
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn nested_scheduling() {
        let mut sim = Sim::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        let l2 = log.clone();
        sim.after(1.0, move |sim| {
            l2.borrow_mut().push(sim.now().secs());
            let l3 = l2.clone();
            sim.after(2.0, move |sim| l3.borrow_mut().push(sim.now().secs()));
        });
        let end = sim.run();
        assert_eq!(*log.borrow(), vec![1.0, 3.0]);
        assert_eq!(end, SimTime(3.0));
    }

    #[test]
    fn flow_completion_time_is_exact() {
        let mut sim = Sim::new();
        let r = sim.net.add_resource("disk", 250.0);
        let done = Rc::new(RefCell::new(None));
        let d = done.clone();
        sim.start_flow(vec![r], 1000.0, move |sim| {
            *d.borrow_mut() = Some(sim.now());
        });
        sim.run();
        assert_eq!(*done.borrow(), Some(SimTime(4.0)));
    }

    #[test]
    fn competing_flows_serialize_fairly() {
        // Two equal flows on one pipe: both finish at 2x the solo time.
        let mut sim = Sim::new();
        let r = sim.net.add_resource("link", 100.0);
        let times = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..2 {
            let times = times.clone();
            sim.start_flow(vec![r], 500.0, move |sim| {
                times.borrow_mut().push(sim.now().secs());
            });
        }
        sim.run();
        let t = times.borrow();
        assert!((t[0] - 10.0).abs() < 1e-9, "{t:?}");
        assert!((t[1] - 10.0).abs() < 1e-9, "{t:?}");
    }

    #[test]
    fn staggered_flows_speed_up_after_departure() {
        // Flow A: 1000B alone on 100B/s. Flow B of 300B arrives at t=2.
        // t in [0,2): A at 100 → 800 left. t in [2, ...): both at 50.
        // B finishes at 2 + 300/50 = 8, A then has 800-300=500 left at 100 B/s
        // → finishes at 8 + 5 = 13.
        let mut sim = Sim::new();
        let r = sim.net.add_resource("link", 100.0);
        let t_a = Rc::new(RefCell::new(0.0));
        let t_b = Rc::new(RefCell::new(0.0));
        let ta = t_a.clone();
        sim.start_flow(vec![r], 1000.0, move |sim| {
            *ta.borrow_mut() = sim.now().secs();
        });
        let tb = t_b.clone();
        sim.after(2.0, move |sim| {
            sim.start_flow(vec![r], 300.0, move |sim| {
                *tb.borrow_mut() = sim.now().secs();
            });
        });
        sim.run();
        assert!((*t_b.borrow() - 8.0).abs() < 1e-9, "B at {}", t_b.borrow());
        assert!((*t_a.borrow() - 13.0).abs() < 1e-9, "A at {}", t_a.borrow());
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let mut sim = Sim::new();
        let r = sim.net.add_resource("link", 100.0);
        let fired = Rc::new(RefCell::new(false));
        let f = fired.clone();
        sim.start_flow(vec![r], 0.0, move |sim| {
            assert_eq!(sim.now(), SimTime::ZERO);
            *f.borrow_mut() = true;
        });
        sim.run();
        assert!(*fired.borrow());
    }

    #[test]
    fn simultaneous_completions_all_fire() {
        // Many equal flows on one link finish at the same instant; one tick
        // must complete all of them.
        let mut sim = Sim::new();
        let r = sim.net.add_resource("link", 100.0);
        let count = Rc::new(RefCell::new(0));
        for _ in 0..10 {
            let count = count.clone();
            sim.start_flow(vec![r], 100.0, move |_| {
                *count.borrow_mut() += 1;
            });
        }
        let end = sim.run();
        assert_eq!(*count.borrow(), 10);
        assert!((end.secs() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn many_flows_deterministic() {
        let run = || {
            let mut sim = Sim::new();
            let r = sim.net.add_resource("link", 1e6);
            let total = Rc::new(RefCell::new(0.0));
            for i in 0..100 {
                let total = total.clone();
                let delay = (i % 7) as f64 * 0.1;
                sim.after(delay, move |sim| {
                    sim.start_flow(vec![r], 1e4 * (1.0 + i as f64), move |sim| {
                        *total.borrow_mut() += sim.now().secs();
                    });
                });
            }
            sim.run();
            let v = *total.borrow();
            v
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn queue_stays_small_under_flow_churn() {
        // The single-tick design must not accumulate stale events.
        let mut sim = Sim::new();
        let r = sim.net.add_resource("link", 1e6);
        for i in 0..500 {
            let delay = i as f64 * 0.001;
            sim.after(delay, move |sim| {
                sim.start_flow(vec![r], 1e3, |_| {});
            });
        }
        sim.run();
        // Events: 500 Calls + ticks; far fewer than the O(F^2) of a
        // reschedule-everything design (which would be ~125k).
        assert!(
            sim.events_processed() < 5_000,
            "event churn too high: {}",
            sim.events_processed()
        );
    }
}
