//! Cluster topology: compute nodes, storage nodes, OSTs and the core switch.
//!
//! Mirrors the paper's testbed (§V-A): a Hadoop cluster of compute nodes
//! (one SATA disk, 10 GbE NIC each) and a Lustre storage cluster (MGS/MDS
//! plus OSS nodes fronting many OST disks), all hanging off a core switch.
//! The topology allocates one [`Resource`](crate::Resource) per contended
//! pipe and answers *path* queries ("which resources does a remote read
//! cross?") that the file-system layers feed to [`crate::Sim::start_flow`].

use crate::flow::{FlowNet, ResourceId};

/// A compute (Hadoop) node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// A storage (Lustre OSS) node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct StorageNodeId(pub u32);

/// Hardware parameters of the simulated cluster.
///
/// Defaults follow the Chameleon testbed of §V-A: 8 Hadoop nodes on 10 GbE
/// with one 7200 RPM SATA disk each; 2 OSS nodes managing 24 OSTs total.
#[derive(Clone, Debug)]
pub struct ClusterSpec {
    pub compute_nodes: usize,
    pub storage_nodes: usize,
    /// OST disks spread round-robin across storage nodes.
    pub osts: usize,
    /// Map/reduce slots per compute node (the paper runs 8 tasks/node).
    pub slots_per_node: usize,
    /// Local SATA disk bandwidth, bytes/s.
    pub disk_bw: f64,
    /// Per-OST (SAS disk) bandwidth, bytes/s.
    pub ost_bw: f64,
    /// NIC bandwidth per direction, bytes/s (10 GbE).
    pub nic_bw: f64,
    /// Core switch fabric aggregate bandwidth, bytes/s.
    pub core_bw: f64,
    /// HDD stream-interference coefficient for local disks and OSTs
    /// (see [`crate::flow::Resource::thrash`]).
    pub disk_thrash: f64,
}

impl Default for ClusterSpec {
    fn default() -> Self {
        ClusterSpec {
            compute_nodes: 8,
            storage_nodes: 2,
            osts: 24,
            slots_per_node: 8,
            disk_bw: 120.0e6,
            ost_bw: 110.0e6,
            nic_bw: 1.25e9,
            core_bw: 40.0e9,
            disk_thrash: 0.06,
        }
    }
}

impl ClusterSpec {
    /// Total map/reduce slots across the cluster.
    pub fn total_slots(&self) -> usize {
        self.compute_nodes * self.slots_per_node
    }
}

#[derive(Clone, Debug)]
struct ComputeRes {
    disk: ResourceId,
    tx: ResourceId,
    rx: ResourceId,
}

#[derive(Clone, Debug)]
struct StorageRes {
    tx: ResourceId,
    rx: ResourceId,
    /// OST disk resources hosted by this OSS node.
    osts: Vec<ResourceId>,
}

/// Resolved topology: resource ids for every pipe, plus path helpers.
#[derive(Clone, Debug)]
pub struct Topology {
    pub spec: ClusterSpec,
    compute: Vec<ComputeRes>,
    storage: Vec<StorageRes>,
    /// (storage node, resource) for each global OST index.
    ost_index: Vec<(StorageNodeId, ResourceId)>,
    pub core: ResourceId,
}

impl Topology {
    /// Allocate resources for `spec` inside `net`.
    pub fn build(net: &mut FlowNet, spec: ClusterSpec) -> Topology {
        assert!(spec.compute_nodes > 0, "need at least one compute node");
        assert!(spec.storage_nodes > 0, "need at least one storage node");
        assert!(spec.osts >= spec.storage_nodes, "need >= 1 OST per OSS");
        let core = net.add_resource("core-switch", spec.core_bw);
        let compute = (0..spec.compute_nodes)
            .map(|i| ComputeRes {
                disk: net.add_resource_thrash(format!("c{i}.disk"), spec.disk_bw, spec.disk_thrash),
                tx: net.add_resource(format!("c{i}.tx"), spec.nic_bw),
                rx: net.add_resource(format!("c{i}.rx"), spec.nic_bw),
            })
            .collect();
        let mut storage: Vec<StorageRes> = (0..spec.storage_nodes)
            .map(|i| StorageRes {
                tx: net.add_resource(format!("s{i}.tx"), spec.nic_bw),
                rx: net.add_resource(format!("s{i}.rx"), spec.nic_bw),
                osts: Vec::new(),
            })
            .collect();
        let mut ost_index = Vec::with_capacity(spec.osts);
        for o in 0..spec.osts {
            let s = o % spec.storage_nodes;
            let r = net.add_resource_thrash(format!("s{s}.ost{o}"), spec.ost_bw, spec.disk_thrash);
            storage[s].osts.push(r);
            ost_index.push((StorageNodeId(s as u32), r));
        }
        Topology {
            spec,
            compute,
            storage,
            ost_index,
            core,
        }
    }

    pub fn n_compute(&self) -> usize {
        self.compute.len()
    }

    pub fn n_osts(&self) -> usize {
        self.ost_index.len()
    }

    /// All compute node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.compute.len() as u32).map(NodeId)
    }

    fn c(&self, n: NodeId) -> &ComputeRes {
        &self.compute[n.0 as usize]
    }

    /// Path for a read or write against the node's local disk.
    pub fn path_local_disk(&self, n: NodeId) -> Vec<ResourceId> {
        vec![self.c(n).disk]
    }

    /// Path for a network transfer between two compute nodes. A transfer to
    /// self crosses nothing (loopback) and is modelled as memory-speed.
    pub fn path_net(&self, src: NodeId, dst: NodeId) -> Vec<ResourceId> {
        if src == dst {
            return Vec::new();
        }
        vec![self.c(src).tx, self.core, self.c(dst).rx]
    }

    /// Path for reading a remote node's disk over the network (HDFS remote
    /// block read: disk -> src NIC -> core -> dst NIC).
    pub fn path_remote_disk_read(&self, owner: NodeId, reader: NodeId) -> Vec<ResourceId> {
        if owner == reader {
            return self.path_local_disk(owner);
        }
        vec![
            self.c(owner).disk,
            self.c(owner).tx,
            self.core,
            self.c(reader).rx,
        ]
    }

    /// Path for writing to a remote node's disk over the network.
    pub fn path_remote_disk_write(&self, writer: NodeId, owner: NodeId) -> Vec<ResourceId> {
        if owner == writer {
            return self.path_local_disk(owner);
        }
        vec![
            self.c(writer).tx,
            self.core,
            self.c(owner).rx,
            self.c(owner).disk,
        ]
    }

    /// Path for a PFS client on `dst` reading from global OST `ost`.
    pub fn path_ost_read(&self, ost: usize, dst: NodeId) -> Vec<ResourceId> {
        let (s, disk) = self.ost_index[ost];
        vec![
            disk,
            self.storage[s.0 as usize].tx,
            self.core,
            self.c(dst).rx,
        ]
    }

    /// Path for a PFS client on `src` writing to global OST `ost`.
    pub fn path_ost_write(&self, src: NodeId, ost: usize) -> Vec<ResourceId> {
        let (s, disk) = self.ost_index[ost];
        vec![
            self.c(src).tx,
            self.core,
            self.storage[s.0 as usize].rx,
            disk,
        ]
    }

    /// The storage node hosting a global OST index.
    pub fn ost_home(&self, ost: usize) -> StorageNodeId {
        self.ost_index[ost].0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_expected_resource_count() {
        let mut net = FlowNet::new();
        let spec = ClusterSpec::default();
        let t = Topology::build(&mut net, spec.clone());
        // core + 3 per compute + 2 per storage + osts
        let expect = 1 + 3 * spec.compute_nodes + 2 * spec.storage_nodes + spec.osts;
        assert_eq!(net.n_resources(), expect);
        assert_eq!(t.n_compute(), spec.compute_nodes);
        assert_eq!(t.n_osts(), spec.osts);
    }

    #[test]
    fn osts_round_robin_across_oss() {
        let mut net = FlowNet::new();
        let t = Topology::build(
            &mut net,
            ClusterSpec {
                storage_nodes: 2,
                osts: 5,
                ..ClusterSpec::default()
            },
        );
        assert_eq!(t.ost_home(0), StorageNodeId(0));
        assert_eq!(t.ost_home(1), StorageNodeId(1));
        assert_eq!(t.ost_home(4), StorageNodeId(0));
    }

    #[test]
    fn loopback_is_free() {
        let mut net = FlowNet::new();
        let t = Topology::build(&mut net, ClusterSpec::default());
        assert!(t.path_net(NodeId(0), NodeId(0)).is_empty());
        assert_eq!(t.path_remote_disk_read(NodeId(1), NodeId(1)).len(), 1);
    }

    #[test]
    fn remote_paths_cross_core() {
        let mut net = FlowNet::new();
        let t = Topology::build(&mut net, ClusterSpec::default());
        let p = t.path_net(NodeId(0), NodeId(1));
        assert_eq!(p.len(), 3);
        assert!(p.contains(&t.core));
        let p = t.path_ost_read(3, NodeId(2));
        assert_eq!(p.len(), 4);
        assert!(p.contains(&t.core));
    }
}
