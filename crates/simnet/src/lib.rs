//! # simnet — a deterministic discrete-event cluster simulator
//!
//! `simnet` is the timing substrate for the SciDP reproduction. The paper's
//! evaluation ran on two physical clusters (a Hadoop cluster and a Lustre
//! storage cluster on TACC Chameleon); here every byte that would have moved
//! through a disk, a NIC or the core switch instead moves through a
//! *flow-level* network model with **max–min fair bandwidth sharing**, and
//! every compute phase is charged a calibrated virtual cost.
//!
//! The simulator is:
//!
//! * **deterministic** — events are ordered by `(time, sequence-number)`, so
//!   every run of the same program produces bit-identical timings;
//! * **flow-level** — a transfer is a [`flow::Flow`] over a path of
//!   [`flow::Resource`]s (disk, NIC tx/rx, switch fabric); concurrent flows
//!   sharing a resource split its capacity max–min fairly, which is the
//!   standard first-order model for TCP-like bandwidth allocation;
//! * **callback-driven** — [`Sim::at`]/[`Sim::after`] schedule closures, and
//!   [`Sim::start_flow`] invokes a completion closure when the last byte
//!   arrives.
//!
//! Higher layers (`pfs`, `hdfs`, `mapreduce`) build file systems and a
//! MapReduce engine on top; *real* data still flows through those layers (the
//! bytes are genuinely stored, compressed, parsed and plotted) while `simnet`
//! accounts for the time that would have elapsed on the paper's testbed.

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod cache;
pub mod cost;
pub mod event;
pub mod fault;
pub mod flow;
pub mod time;
pub mod topology;

pub use cache::{ChunkKey, ClusterCache, ClusterCacheStats};
pub use cost::CostModel;
pub use event::Sim;
pub use fault::{
    CorruptSpec, FaultInjector, FaultPlan, FaultPlanError, PartitionSpec, ReadOutcome,
};
pub use flow::{FlowId, FlowNet, Resource, ResourceId};
pub use time::SimTime;
pub use topology::{ClusterSpec, NodeId, StorageNodeId, Topology};
