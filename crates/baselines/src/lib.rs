//! # baselines — every comparator data path from the paper
//!
//! The paper's evaluation (Table I, Fig. 5, Table III) compares SciDP
//! against four conventional solutions, all of which are implemented here
//! as runnable pipelines over the same substrates:
//!
//! | solution        | conversion | copy        | processing |
//! |-----------------|-----------|-------------|------------|
//! | Naive           | yes       | sequential  | sequential |
//! | Vanilla Hadoop  | yes       | parallel    | parallel   |
//! | PortHadoop      | yes       | no          | parallel   |
//! | SciHadoop       | no        | parallel    | parallel   |
//! | SciDP           | no        | no          | parallel   |
//!
//! plus the **Lustre HDFS connector** vs native HDFS comparison of Fig. 2
//! (Terasort / Grep / TestDFSIO in [`workloads`]).
//!
//! Conversion time is *measured but excluded from totals*, exactly as the
//! paper does ("we do not count the conversion time into the total time in
//! any tests of this paper").

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod convert;
pub mod datapath;
pub mod distcp;
pub mod scihadoop;
pub mod solutions;
pub mod textjob;
pub mod util;
pub mod workloads;

pub use convert::{convert_dataset, ConversionReport};
pub use datapath::{data_path_table, DataPathRow, SolutionKind};
pub use distcp::{distcp, CopyReport};
pub use solutions::{
    run_naive, run_porthadoop, run_porthadoop_with_chunks, run_scidp_solution, run_scihadoop,
    run_vanilla, SolutionReport,
};
pub use util::{paper_cluster, stage_nuwrf, StagedDataset};
pub use workloads::{run_fig2_workload, Backend, Fig2Workload};
