//! SciHadoop: scientific-format-aware processing of data staged on HDFS
//! (Buck et al., SC'11 — the paper's strongest copy-based comparator).
//!
//! SciHadoop avoids text conversion: the binary containers are `distcp`-ed
//! from the PFS to HDFS **whole** ("the netCDF file is not dividable in the
//! variable level, the whole file has to be moved, which introduces
//! redundant I/O"), then chunk-aligned splits are processed with the same R
//! program SciDP runs — only the block reads come from HDFS DataNodes.

use std::rc::Rc;
use std::sync::Arc;

use hdfs::Block;
use mapreduce::{FetchDone, FetchResult, InputSplit, MrEnv, MrError, SplitFetcher, TaskInput};
use scidp::encode_slab_tag;
use scifmt::snc::{assemble_slab, chunk_extents_of};
use scifmt::{SncMeta, VarMeta};
use simnet::{NodeId, Sim};

/// Reads a variable hyperslab out of an SNC container staged on HDFS.
pub struct HdfsSciFetcher {
    pub hdfs_path: String,
    pub var: Arc<VarMeta>,
    pub data_offset: usize,
    pub start: Vec<usize>,
    pub count: Vec<usize>,
}

impl SplitFetcher for HdfsSciFetcher {
    fn fetch(&self, env: &MrEnv, sim: &mut Sim, node: NodeId, done: FetchDone) {
        // Resolve the chunks this slab needs and the HDFS blocks covering
        // their byte extents.
        let shape = self.var.shape();
        let ids = scifmt::hyperslab::chunks_for_slab(
            &shape,
            &self.var.chunk_shape,
            &self.start,
            &self.count,
        );
        let extents = chunk_extents_of(&self.var, self.data_offset);
        let chunk_ranges: Vec<(usize, u64, u64)> = ids
            .iter()
            .map(|&i| (i, extents[i].offset, extents[i].clen))
            .collect();
        let blocks: Vec<(u64, Block)> = {
            let h = env.hdfs.borrow();
            match h.namenode.blocks(&self.hdfs_path) {
                Ok(bs) => {
                    let mut off = 0u64;
                    bs.iter()
                        .map(|b| {
                            let entry = (off, b.clone());
                            off += b.len;
                            entry
                        })
                        .collect()
                }
                Err(e) => {
                    drop(h);
                    done(
                        sim,
                        Err(MrError::msg(format!(
                            "scihadoop fetch: staged container `{}`: {e}",
                            self.hdfs_path
                        ))),
                    );
                    return;
                }
            }
        };
        // Which blocks overlap any needed chunk range?
        let mut needed: Vec<usize> = Vec::new();
        for (bi, (boff, b)) in blocks.iter().enumerate() {
            let bend = boff + b.len;
            if chunk_ranges
                .iter()
                .any(|&(_, coff, clen)| coff < bend && coff + clen > *boff)
            {
                needed.push(bi);
            }
        }
        let total_raw: usize = ids.iter().map(|&i| extents[i].rlen as usize).sum();
        let decompress_cost = sim.cost.decompress(total_raw);
        let tag = {
            let dims: Vec<String> = self.var.dims.iter().map(|d| d.name.clone()).collect();
            encode_slab_tag(&self.hdfs_path, &self.var.name, &dims, &self.start)
        };

        // Read all needed blocks in parallel, then slice out the chunks.
        use std::cell::RefCell;
        #[allow(clippy::type_complexity)]
        let collected: Rc<RefCell<Vec<(u64, Arc<Vec<u8>>)>>> = Rc::new(RefCell::new(Vec::new()));
        let remaining = Rc::new(RefCell::new(needed.len()));
        let var = self.var.clone();
        let start = self.start.clone();
        let count = self.count.clone();
        let done_cell = Rc::new(RefCell::new(Some(done)));
        assert!(
            !needed.is_empty(),
            "slab {start:?}+{count:?} maps to no HDFS blocks"
        );
        for bi in needed {
            let (boff, block) = blocks[bi].clone();
            let collected = collected.clone();
            let remaining = remaining.clone();
            let done_cell = done_cell.clone();
            let var = var.clone();
            let start = start.clone();
            let count = count.clone();
            let chunk_ranges = chunk_ranges.clone();
            let tag = tag.clone();
            let dc = done_cell.clone();
            let res =
                hdfs::read_block(sim, &env.topo, &env.hdfs, node, &block, move |sim, data| {
                    collected.borrow_mut().push((boff, data));
                    let mut rem = remaining.borrow_mut();
                    *rem -= 1;
                    if *rem > 0 {
                        return;
                    }
                    drop(rem);
                    let mut parts = std::mem::take(&mut *collected.borrow_mut());
                    parts.sort_by_key(|(o, _)| *o);
                    // Slice each chunk frame from the block bytes and decode.
                    let slice_range = |lo: u64, len: u64| -> Vec<u8> {
                        let mut out = Vec::with_capacity(len as usize);
                        for (boff, data) in &parts {
                            let bend = boff + data.len() as u64;
                            let s = lo.max(*boff);
                            let e = (lo + len).min(bend);
                            if s < e {
                                out.extend_from_slice(
                                    &data[(s - boff) as usize..(e - boff) as usize],
                                );
                            }
                        }
                        out
                    };
                    let mut raw_chunks = std::collections::HashMap::new();
                    for &(idx, coff, clen) in &chunk_ranges {
                        let frame = slice_range(coff, clen);
                        assert_eq!(frame.len() as u64, clen, "chunk fully covered by blocks");
                        match scifmt::codec::decompress(&frame) {
                            Ok(raw) => {
                                raw_chunks.insert(idx, raw);
                            }
                            Err(e) => {
                                let Some(d) = dc.borrow_mut().take() else {
                                    return;
                                };
                                d(
                                    sim,
                                    Err(MrError::msg(format!(
                                        "scihadoop fetch: chunk {idx} decode: {e}"
                                    ))),
                                );
                                return;
                            }
                        }
                    }
                    let array = match assemble_slab(&var, &start, &count, |i| {
                        raw_chunks
                            .get(&i)
                            .cloned()
                            .ok_or_else(|| scifmt::FmtError::NotFound(format!("chunk {i}")))
                    }) {
                        Ok(a) => a,
                        Err(e) => {
                            let Some(d) = dc.borrow_mut().take() else {
                                return;
                            };
                            d(
                                sim,
                                Err(MrError::msg(format!("scihadoop fetch: assemble: {e}"))),
                            );
                            return;
                        }
                    };
                    let Some(d) = dc.borrow_mut().take() else {
                        return; // a sibling block read already failed this fetch
                    };
                    d(
                        sim,
                        Ok(FetchResult {
                            input: TaskInput::Array(array),
                            charges: vec![("decompress", decompress_cost)],
                            counters: Vec::new(),
                            tag,
                        }),
                    );
                });
            if let Err(e) = res {
                if let Some(d) = done_cell.borrow_mut().take() {
                    let e = mapreduce::MrError::msg(format!("hdfs: {e} ({})", self.hdfs_path));
                    sim.after(0.0, move |sim| d(sim, Err(e)));
                }
                return;
            }
        }
    }

    fn describe(&self) -> String {
        format!(
            "scihadoop://{}#{}[{:?}+{:?}]",
            self.hdfs_path, self.var.name, self.start, self.count
        )
    }
}

/// Build SciHadoop splits for one staged container: chunk-aligned slabs of
/// the selected variables, located where their covering blocks live.
pub fn scihadoop_splits(
    env: &MrEnv,
    meta: &SncMeta,
    hdfs_path: &str,
    variables: &[String],
) -> Vec<InputSplit> {
    let blocks: Vec<(u64, Block)> = {
        let h = env.hdfs.borrow();
        let mut off = 0u64;
        h.namenode
            .blocks(hdfs_path)
            .expect("staged container on HDFS")
            .iter()
            .map(|b| {
                let e = (off, b.clone());
                off += b.len;
                e
            })
            .collect()
    };
    let mut splits = Vec::new();
    for (var_path, var) in meta.all_vars() {
        if !variables.iter().any(|v| v == &var_path) {
            continue;
        }
        let var = Arc::new(var.clone());
        for ext in chunk_extents_of(&var, meta.data_offset) {
            // Locality: nodes holding blocks that cover this chunk.
            let mut locations = Vec::new();
            for (boff, b) in &blocks {
                let bend = boff + b.len;
                if ext.offset < bend && ext.offset + ext.clen > *boff {
                    for n in b.locations() {
                        if !locations.contains(n) {
                            locations.push(*n);
                        }
                    }
                }
            }
            splits.push(InputSplit {
                length: ext.clen,
                locations,
                fetcher: Rc::new(HdfsSciFetcher {
                    hdfs_path: hdfs_path.to_string(),
                    var: var.clone(),
                    data_offset: meta.data_offset,
                    start: ext.origin.clone(),
                    count: ext.shape.clone(),
                }),
            });
        }
    }
    splits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distcp::distcp_blocking;
    use crate::util::{paper_cluster, stage_nuwrf};
    use std::cell::RefCell;
    use wrfgen::WrfSpec;

    #[test]
    fn staged_slab_matches_pfs_original() {
        let wspec = WrfSpec::tiny(1);
        let mut c = paper_cluster(2, &wspec);
        let ds = stage_nuwrf(&mut c, &wspec, "nuwrf");
        let src = ds.info.files[0].clone();
        distcp_blocking(&mut c, vec![(src.clone(), "staged.snc".into())], 2);
        // Parse metadata from the original bytes (identical content).
        let bytes = c.pfs.borrow().file(&src).unwrap().data.clone();
        let f = scifmt::SncFile::open(bytes.as_ref().clone()).unwrap();
        let env = c.env();
        let splits = scihadoop_splits(&env, f.meta(), "staged.snc", &["QR".to_string()]);
        // tiny spec: 4 levels / 2-level chunks = 2 slabs.
        assert_eq!(splits.len(), 2);
        assert!(
            !splits[0].locations.is_empty(),
            "staged splits carry block locality"
        );
        // Fetch the second slab and compare against a direct read.
        let got = Rc::new(RefCell::new(None));
        let g = got.clone();
        splits[1].fetcher.fetch(
            &env,
            &mut c.sim,
            NodeId(0),
            Box::new(move |_, fr| {
                *g.borrow_mut() = Some(fr);
            }),
        );
        c.run();
        let fr = got.borrow_mut().take().unwrap().unwrap();
        let TaskInput::Array(a) = fr.input else {
            panic!("expected array")
        };
        let expect = f.get_vara("QR", &[2, 0, 0], &[2, 8, 8]).unwrap();
        assert_eq!(a, expect);
        // Tag decodes to the right slab.
        let (file, var, dims, origin) = scidp::decode_tag(&fr.tag).unwrap();
        assert_eq!(file, "staged.snc");
        assert_eq!(var, "QR");
        assert_eq!(dims, vec!["lev", "lat", "lon"]);
        assert_eq!(origin, vec![2, 0, 0]);
    }
}
