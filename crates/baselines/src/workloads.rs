//! Figure 2: native HDFS vs the Lustre HDFS connector on Hadoop
//! micro-workloads (Terasort, Grep, TestDFSIO).
//!
//! The connector ("unified file system" deployment, Fig. 1(b)) services
//! *all* Hadoop I/O from the PFS: input reads, shuffle spills and outputs
//! cross the network to the OSS nodes (the Seagate connector is literally
//! "Diskless Hadoop on Lustre"). Native HDFS keeps input blocks, spills and
//! outputs on node-local disks. The paper measures native HDFS ~2-3x
//! faster; the same asymmetry emerges here structurally.

use std::rc::Rc;
use std::sync::Arc;

use mapreduce::{
    run_job, Cluster, FlatPfsFetcher, InMemoryFetcher, InputSplit, Job, MrError, Payload, TaskInput,
};
use pfs::PfsConfig;
use scirng::Rng;
use simnet::{ClusterSpec, CostModel, NodeId};

/// Which storage backs the Hadoop cluster.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Native HDFS: local-disk blocks, local spills.
    Hdfs,
    /// Lustre connector: every byte crosses the network to the PFS.
    Connector,
}

/// The three Fig. 2 workloads (DFSIO split into its two phases).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fig2Workload {
    Terasort,
    Grep,
    TestDfsioWrite,
    TestDfsioRead,
}

impl Fig2Workload {
    pub const ALL: [Fig2Workload; 4] = [
        Fig2Workload::Terasort,
        Fig2Workload::Grep,
        Fig2Workload::TestDfsioWrite,
        Fig2Workload::TestDfsioRead,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Fig2Workload::Terasort => "Terasort",
            Fig2Workload::Grep => "Grep",
            Fig2Workload::TestDfsioWrite => "TestDFSIO-write",
            Fig2Workload::TestDfsioRead => "TestDFSIO-read",
        }
    }
}

/// Sizing knobs (real bytes; the cost model's `scale` lifts them to
/// paper-sized logical bytes).
#[derive(Clone, Debug)]
pub struct Fig2Config {
    pub nodes: usize,
    /// Real bytes of input per node.
    pub bytes_per_node: usize,
    /// Logical bytes per real byte.
    pub scale: f64,
    /// Real HDFS block size.
    pub block_size: usize,
}

impl Default for Fig2Config {
    fn default() -> Self {
        Fig2Config {
            nodes: 8,
            bytes_per_node: 65_000,
            // 65 kB real → ~1 GiB logical per node.
            scale: 16384.0,
            // Multiple of the 100-byte record so block splits stay aligned.
            block_size: 16_000,
        }
    }
}

/// Build the Fig. 2 testbed: as many OSTs as Hadoop nodes (§II-B: "We use
/// eight OSTs and eight Hadoop nodes... replication factor to one").
fn fig2_cluster(cfg: &Fig2Config) -> Cluster {
    let spec = ClusterSpec {
        compute_nodes: cfg.nodes,
        storage_nodes: 2,
        osts: cfg.nodes,
        ..ClusterSpec::default()
    };
    let pfs_cfg = PfsConfig {
        n_osts: cfg.nodes,
        stripe_size: ((1 << 20) as f64 / cfg.scale).max(64.0) as usize,
        default_stripe_count: cfg.nodes,
    };
    let cost = CostModel {
        scale: cfg.scale,
        ..CostModel::default()
    };
    Cluster::new(spec, pfs_cfg, cfg.block_size, 1, cost)
}

/// Deterministic pseudo-random input: 100-byte records (10-byte key).
fn gen_records(seed: u64, bytes: usize) -> Vec<u8> {
    let mut rng = Rng::seed_from_u64(seed);
    let n = bytes / 100;
    let mut out = Vec::with_capacity(n * 100);
    for _ in 0..n {
        for _ in 0..10 {
            out.push(rng.byte_inclusive(b'A', b'Z'));
        }
        for _ in 0..90 {
            out.push(rng.byte_inclusive(b'a', b'z'));
        }
    }
    out
}

/// Stage an input file *untimed* (inputs pre-exist; only the workload is
/// measured).
fn stage_input(cluster: &mut Cluster, backend: Backend, path: &str, data: Vec<u8>, home: NodeId) {
    match backend {
        Backend::Hdfs => {
            let mut h = cluster.hdfs.borrow_mut();
            let block = h.namenode.block_size;
            h.namenode.create_file(path).expect("fresh path");
            let chunks: Vec<Vec<u8>> = data.chunks(block).map(<[u8]>::to_vec).collect();
            for c in chunks {
                let len = c.len() as u64;
                let crc = scirng::crc32c(&c);
                let id = h
                    .namenode
                    .add_block(path, len, vec![home], crc)
                    .expect("file exists");
                h.datanodes.put(home, id, Arc::new(c));
            }
        }
        Backend::Connector => {
            cluster.pfs.borrow_mut().create(path, data);
        }
    }
}

/// Input splits for a staged file under either backend.
fn input_splits(cluster: &Cluster, backend: Backend, path: &str) -> Vec<InputSplit> {
    let env = cluster.env();
    match backend {
        // scilint::allow(p-expect, reason = "harness staging precondition: stage_input created the path immediately above; a miss is a bug in the bench itself")
        Backend::Hdfs => mapreduce::hdfs_file_splits(&env, path).expect("staged input path"),
        Backend::Connector => {
            let len = cluster.pfs.borrow().len_of(path).expect("staged input");
            let block = cluster.hdfs.borrow().namenode.block_size;
            let mut out = Vec::new();
            let mut off = 0usize;
            while off < len {
                let l = block.min(len - off);
                out.push(InputSplit {
                    length: l as u64,
                    locations: Vec::new(),
                    fetcher: Rc::new(FlatPfsFetcher {
                        pfs_path: path.to_string(),
                        offset: off as u64,
                        len: l as u64,
                        sequential_chunks: 1,
                    }),
                });
                off += l;
            }
            out
        }
    }
}

fn apply_backend(job: &mut Job, backend: Backend) {
    if backend == Backend::Connector {
        job.spill_to_pfs = true;
        job.output_to_pfs = true;
    }
}

/// Run one workload under one backend; returns elapsed virtual seconds.
pub fn run_fig2_workload(w: Fig2Workload, backend: Backend, cfg: &Fig2Config) -> f64 {
    let mut cluster = fig2_cluster(cfg);
    match w {
        Fig2Workload::Terasort => terasort(&mut cluster, backend, cfg),
        Fig2Workload::Grep => grep(&mut cluster, backend, cfg),
        Fig2Workload::TestDfsioWrite => dfsio_write(&mut cluster, backend, cfg),
        Fig2Workload::TestDfsioRead => dfsio_read(&mut cluster, backend, cfg),
    }
}

fn stage_per_node_inputs(cluster: &mut Cluster, backend: Backend, cfg: &Fig2Config) -> Vec<String> {
    (0..cfg.nodes)
        .map(|n| {
            let path = format!("tera_in/part-{n:05}");
            let data = gen_records(0xf16_2000 + n as u64, cfg.bytes_per_node);
            stage_input(cluster, backend, &path, data, NodeId(n as u32));
            path
        })
        .collect()
}

fn terasort(cluster: &mut Cluster, backend: Backend, cfg: &Fig2Config) -> f64 {
    let files = stage_per_node_inputs(cluster, backend, cfg);
    let mut splits = Vec::new();
    for f in &files {
        splits.extend(input_splits(cluster, backend, f));
    }
    let mut job = Job {
        name: "terasort".into(),
        splits,
        map_fn: Rc::new(|input, ctx| {
            let TaskInput::Bytes(b) = input else {
                return Err(MrError::msg("terasort expects bytes"));
            };
            ctx.charge(
                "scan",
                ctx.cost().lbytes(b.len()) * ctx.cost().scan_per_byte,
            );
            // Range-partition by first key byte; records travel whole.
            for rec in b.chunks_exact(100) {
                let bucket = rec[0].saturating_sub(b'A');
                ctx.emit(format!("{bucket:02}"), Payload::Bytes(rec.to_vec()));
            }
            Ok(())
        }),
        reduce_fn: Some(Rc::new(|key, values, ctx| {
            // Real sort of this partition's records.
            let mut recs: Vec<Vec<u8>> = values
                .into_iter()
                .map(|v| match v {
                    Payload::Bytes(b) => b,
                    Payload::Frame(_) => Vec::new(),
                })
                .collect();
            recs.sort();
            let bytes: usize = recs.iter().map(Vec::len).sum();
            ctx.charge("sort", ctx.cost().lbytes(bytes) * ctx.cost().sort_per_byte);
            let mut out = Vec::with_capacity(bytes);
            for r in recs {
                out.extend_from_slice(&r);
            }
            ctx.emit(key, Payload::Bytes(out));
            Ok(())
        })),
        n_reducers: cfg.nodes,
        output_dir: "tera_out".into(),
        spill_to_pfs: false,
        output_to_pfs: false,
        ft: mapreduce::FtConfig::default(),
        stream: mapreduce::StreamConfig::default(),
        shuffle: None,
    };
    apply_backend(&mut job, backend);
    run_job(cluster, job).expect("terasort succeeds").elapsed()
}

fn grep(cluster: &mut Cluster, backend: Backend, cfg: &Fig2Config) -> f64 {
    let files = stage_per_node_inputs(cluster, backend, cfg);
    let mut splits = Vec::new();
    for f in &files {
        splits.extend(input_splits(cluster, backend, f));
    }
    let mut job = Job {
        name: "grep".into(),
        splits,
        map_fn: Rc::new(|input, ctx| {
            let TaskInput::Bytes(b) = input else {
                return Err(MrError::msg("grep expects bytes"));
            };
            ctx.charge(
                "scan",
                ctx.cost().lbytes(b.len()) * ctx.cost().scan_per_byte,
            );
            // Real substring count.
            let pat = b"abc";
            let count = b.windows(pat.len()).filter(|w| w == pat).count();
            ctx.emit("abc", Payload::Bytes(count.to_string().into_bytes()));
            Ok(())
        }),
        reduce_fn: Some(Rc::new(|key, values, ctx| {
            let total: usize = values
                .iter()
                .map(|v| match v {
                    Payload::Bytes(b) => String::from_utf8_lossy(b).parse::<usize>().unwrap_or(0),
                    _ => 0,
                })
                .sum();
            ctx.emit(key, Payload::Bytes(total.to_string().into_bytes()));
            Ok(())
        })),
        n_reducers: 1,
        output_dir: "grep_out".into(),
        spill_to_pfs: false,
        output_to_pfs: false,
        ft: mapreduce::FtConfig::default(),
        stream: mapreduce::StreamConfig::default(),
        shuffle: None,
    };
    apply_backend(&mut job, backend);
    run_job(cluster, job).expect("grep succeeds").elapsed()
}

fn dfsio_write(cluster: &mut Cluster, backend: Backend, cfg: &Fig2Config) -> f64 {
    // One writer task per node, each writing bytes_per_node.
    let splits: Vec<InputSplit> = (0..cfg.nodes)
        .map(|_| InputSplit {
            length: 1,
            locations: Vec::new(),
            fetcher: Rc::new(InMemoryFetcher { data: vec![0] }),
        })
        .collect();
    let per_task = cfg.bytes_per_node;
    let mut job = Job {
        name: "dfsio-write".into(),
        splits,
        map_fn: Rc::new(move |_, ctx| {
            ctx.emit("data", Payload::Bytes(vec![0x5a; per_task]));
            Ok(())
        }),
        reduce_fn: None,
        n_reducers: 1,
        output_dir: "dfsio_out".into(),
        spill_to_pfs: false,
        output_to_pfs: false,
        ft: mapreduce::FtConfig::default(),
        stream: mapreduce::StreamConfig::default(),
        shuffle: None,
    };
    apply_backend(&mut job, backend);
    run_job(cluster, job)
        .expect("dfsio write succeeds")
        .elapsed()
}

fn dfsio_read(cluster: &mut Cluster, backend: Backend, cfg: &Fig2Config) -> f64 {
    let files = stage_per_node_inputs(cluster, backend, cfg);
    let mut splits = Vec::new();
    for f in &files {
        splits.extend(input_splits(cluster, backend, f));
    }
    let mut job = Job {
        name: "dfsio-read".into(),
        splits,
        map_fn: Rc::new(|input, _| {
            let TaskInput::Bytes(_) = input else {
                return Err(MrError::msg("dfsio expects bytes"));
            };
            Ok(())
        }),
        reduce_fn: None,
        n_reducers: 1,
        output_dir: "dfsio_read_out".into(),
        spill_to_pfs: false,
        output_to_pfs: false,
        ft: mapreduce::FtConfig::default(),
        stream: mapreduce::StreamConfig::default(),
        shuffle: None,
    };
    apply_backend(&mut job, backend);
    run_job(cluster, job)
        .expect("dfsio read succeeds")
        .elapsed()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> Fig2Config {
        Fig2Config {
            nodes: 4,
            bytes_per_node: 16_000,
            scale: 8192.0,
            block_size: 4_000,
        }
    }

    #[test]
    fn native_hdfs_beats_connector_on_every_workload() {
        let cfg = small_cfg();
        for w in Fig2Workload::ALL {
            let hdfs = run_fig2_workload(w, Backend::Hdfs, &cfg);
            let conn = run_fig2_workload(w, Backend::Connector, &cfg);
            assert!(
                conn > hdfs,
                "{}: connector ({conn:.1}s) should be slower than HDFS ({hdfs:.1}s)",
                w.name()
            );
        }
    }

    #[test]
    fn average_connector_slowdown_is_paper_scale() {
        // Paper: native HDFS outperforms the connector by ~221% on average
        // (i.e. ~2-3x). Accept 1.3x-6x as the same shape.
        let cfg = small_cfg();
        let mut ratios = Vec::new();
        for w in Fig2Workload::ALL {
            let hdfs = run_fig2_workload(w, Backend::Hdfs, &cfg);
            let conn = run_fig2_workload(w, Backend::Connector, &cfg);
            ratios.push(conn / hdfs);
        }
        let avg: f64 = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!(avg > 1.3, "avg slowdown {avg:.2} too small: {ratios:?}");
        assert!(
            avg < 6.0,
            "avg slowdown {avg:.2} implausibly large: {ratios:?}"
        );
    }

    #[test]
    fn terasort_output_is_sorted_and_complete() {
        let cfg = small_cfg();
        let mut cluster = fig2_cluster(&cfg);
        let t = terasort(&mut cluster, Backend::Hdfs, &cfg);
        assert!(t > 0.0);
        let h = cluster.hdfs.borrow();
        let outs = h.namenode.list_files_recursive("tera_out").unwrap();
        assert!(!outs.is_empty());
        let total: u64 = outs.iter().map(|f| f.len).sum();
        // All records survive (plus key\t...\n framing per reduce group).
        let records = (cfg.bytes_per_node / 100) * cfg.nodes;
        assert!(total as usize >= records * 100);
    }

    #[test]
    fn deterministic_input_generation() {
        assert_eq!(gen_records(7, 1000), gen_records(7, 1000));
        assert_ne!(gen_records(7, 1000), gen_records(8, 1000));
        assert_eq!(gen_records(7, 1000).len(), 1000);
    }
}
