//! The text-path processing shared by the conversion-based baselines
//! (naive, vanilla Hadoop, PortHadoop): `read.table` the CSV, rebuild the
//! level grids, plot each level.
//!
//! This is the Figure 7 "Convert"-dominated path: parsing the ~33x-larger
//! text through `read.table` costs far more than SciDP's binary decode.

use std::rc::Rc;

use mapreduce::{InputSplit, MapFn, MrEnv, MrError, SplitFetcher, TaskCtx, TaskInput};
use rframe::read_table;
use scidp::{RCtx, WorkflowConfig};
use simnet::{NodeId, Sim};

/// Wrap any fetcher to attach a fixed tag (here: the input file name, used
/// to key the plotted images).
pub struct TagFetcher {
    pub inner: Rc<dyn SplitFetcher>,
    pub tag: String,
}

impl SplitFetcher for TagFetcher {
    fn fetch(&self, env: &MrEnv, sim: &mut Sim, node: NodeId, done: mapreduce::FetchDone) {
        let tag = self.tag.clone();
        self.inner.fetch(
            env,
            sim,
            node,
            Box::new(move |sim, fr| {
                done(
                    sim,
                    fr.map(|mut fr| {
                        fr.tag = tag;
                        fr
                    }),
                );
            }),
        );
    }

    fn open_stream(
        &self,
        env: &MrEnv,
        sim: &mut Sim,
        node: NodeId,
    ) -> Result<Box<dyn mapreduce::PieceStream>, mapreduce::StreamFallback> {
        let inner = self.inner.open_stream(env, sim, node)?;
        Ok(mapreduce::retag_stream(inner, self.tag.clone()))
    }

    fn describe(&self) -> String {
        format!("{} [{}]", self.inner.describe(), self.tag)
    }
}

/// Tag a split with a file name.
pub fn tag_split(split: InputSplit, tag: impl Into<String>) -> InputSplit {
    InputSplit {
        length: split.length,
        locations: split.locations.clone(),
        fetcher: Rc::new(TagFetcher {
            inner: split.fetcher,
            tag: tag.into(),
        }),
    }
}

/// Run the text-path payload against an already-fetched input. Factored out
/// so the naive (non-Hadoop) solution can run the identical code.
pub fn process_text(
    text: &[u8],
    ctx: &mut TaskCtx,
    cfg: &WorkflowConfig,
    raster: (u32, u32),
    scale: f64,
) -> Result<(), MrError> {
    // read.table: the expensive text parse (real + charged).
    ctx.charge("convert", ctx.cost().text_parse(text.len()));
    let s = std::str::from_utf8(text)
        .map_err(|e| MrError::msg(format!("input is not UTF-8 text: {e}")))?;
    let df = read_table(s, true, ',').map_err(|e| MrError::msg(e.to_string()))?;
    if df.n_rows() == 0 {
        return Ok(());
    }
    let lat_max = df.column("lat").map_err(|e| MrError::msg(e.to_string()))?;
    let lon_max = df.column("lon").map_err(|e| MrError::msg(e.to_string()))?;
    let lat_n = (0..df.n_rows())
        .map(|r| lat_max.f64_at(r) as usize)
        .max()
        .unwrap_or(0)
        + 1;
    let lon_n = (0..df.n_rows())
        .map(|r| lon_max.f64_at(r) as usize)
        .max()
        .unwrap_or(0)
        + 1;
    let per_level = lat_n * lon_n;
    let vcol = df
        .column("value")
        .map_err(|e| MrError::msg(e.to_string()))?;
    let values: Vec<f64> = (0..df.n_rows()).map(|r| vcol.f64_at(r)).collect();
    let levs = df.column("lev").map_err(|e| MrError::msg(e.to_string()))?;
    if df.n_rows() % per_level != 0 {
        return Err(MrError::msg(format!(
            "ragged text input: {} rows, {per_level} per level",
            df.n_rows()
        )));
    }
    let tag = ctx.input_tag().to_string();
    let file = if tag.is_empty() { "input" } else { &tag };
    let file = file.to_string();
    let mut rctx = RCtx::new(ctx, cfg.logical_image, raster, scale);
    for (li, grid) in values.chunks(per_level).enumerate() {
        let lev = levs.f64_at(li * per_level) as usize;
        let raster_img = rctx.image2d(grid, lat_n, lon_n, cfg.colormap)?;
        rctx.emit_image(format!("img/{file}/QR/{lev:04}"), &raster_img);
    }
    Ok(())
}

/// Engine map function running [`process_text`].
pub fn text_map_fn(cfg: &WorkflowConfig, raster: (u32, u32), scale: f64) -> MapFn {
    let cfg = cfg.clone();
    Rc::new(move |input, ctx| {
        let TaskInput::Bytes(text) = input else {
            return Err(MrError::msg("text job expects byte input"));
        };
        process_text(&text, ctx, &cfg, raster, scale)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::CostModel;

    fn sample_text() -> Vec<u8> {
        // 2 levels of a 2x3 grid.
        let mut t = String::from("lev,lat,lon,value\n");
        for lev in 0..2 {
            for lat in 0..2 {
                for lon in 0..3 {
                    t.push_str(&format!("{lev},{lat},{lon},{}\n", lev * 10 + lat * 3 + lon));
                }
            }
        }
        t.into_bytes()
    }

    #[test]
    fn plots_one_image_per_level() {
        let mut ctx = TaskCtx::standalone(CostModel::default());
        ctx.set_tag("plot_0001.csv");
        let cfg = WorkflowConfig::img_only(["QR"]);
        process_text(&sample_text(), &mut ctx, &cfg, (8, 8), 1.0).unwrap();
        let emitted = ctx.take_emitted();
        assert_eq!(emitted.len(), 2);
        assert_eq!(emitted[0].0, "img/plot_0001.csv/QR/0000");
        assert_eq!(emitted[1].0, "img/plot_0001.csv/QR/0001");
        // Text parse + plot charges present.
        assert!(ctx.total_charge_s() > 0.0);
    }

    #[test]
    fn text_parse_charge_dominates_small_plots() {
        // With paper-scale text and tiny plots the Convert phase dominates —
        // the Fig. 7 mechanism.
        let mut ctx = TaskCtx::standalone(CostModel {
            scale: 1e4,
            ..CostModel::default()
        });
        let cfg = WorkflowConfig {
            logical_image: (10, 10),
            ..WorkflowConfig::img_only(["QR"])
        };
        let text = sample_text();
        process_text(&text, &mut ctx, &cfg, (8, 8), 1e4).unwrap();
        let expected_parse = 1e4 * text.len() as f64 * ctx.cost().text_parse_per_byte;
        assert!(ctx.total_charge_s() >= expected_parse);
    }

    #[test]
    fn garbage_input_is_an_error() {
        let mut ctx = TaskCtx::standalone(CostModel::default());
        let cfg = WorkflowConfig::img_only(["QR"]);
        assert!(process_text(&[0xff, 0xfe], &mut ctx, &cfg, (8, 8), 1.0).is_err());
        assert!(
            process_text(b"a,b\n1,2\n", &mut ctx, &cfg, (8, 8), 1.0).is_err(),
            "missing lev/lat/lon columns"
        );
    }
}
