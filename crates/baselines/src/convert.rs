//! The offline netCDF → CSV conversion step (required by naive, vanilla
//! Hadoop and PortHadoop; §II-B / §V-A).
//!
//! Conversion is *real* — the text the downstream pipelines parse comes out
//! of [`scifmt::convert`] — and its (large) virtual time is measured and
//! reported but, following the paper, **never counted** into any solution's
//! total.

use mapreduce::Cluster;
use scidp::ReaderSession;

use crate::util::StagedDataset;

/// Outcome of converting a staged dataset.
#[derive(Clone, Debug)]
pub struct ConversionReport {
    /// PFS paths of the text files, one per (file, variable).
    pub text_files: Vec<String>,
    /// Real text bytes produced.
    pub text_bytes: usize,
    /// Virtual seconds the conversion would take (excluded from totals).
    pub conversion_time: f64,
    /// Text bytes / stored (compressed) bytes of the converted variables —
    /// the paper reports ~33x.
    pub expansion_vs_compressed: f64,
    /// Effective chunk-cache capacity of the conversion's reader session:
    /// ONE shared pool serves every opened file, so this is the total
    /// chunk memory the conversion holds — not a per-file figure.
    pub cache_capacity_bytes: usize,
}

/// Convert the selected variables of every file to CSV text on the PFS
/// (under `<dir>_text/`).
pub fn convert_dataset(
    cluster: &mut Cluster,
    ds: &StagedDataset,
    variables: &[String],
) -> ConversionReport {
    let mut text_files = Vec::new();
    let mut text_bytes = 0usize;
    let mut raw_bytes = 0usize;
    let mut stored_bytes = 0usize;
    // One reader session for the whole conversion: every file opened
    // through it shares a single content-keyed decompressed-chunk pool, so
    // the converter never re-decodes a chunk it (or a prior conversion of
    // the same dataset) has already seen — and holds one cache's worth of
    // memory, not one per file.
    let session = ReaderSession::default();
    for path in &ds.info.files {
        let bytes = {
            let p = cluster.pfs.borrow();
            p.file(path).expect("staged file present").data.clone()
        };
        let f = session
            .open(bytes.as_ref().clone())
            .expect("staged file parses");
        let converted =
            scifmt::convert::snc_to_csv(&f, Some(variables)).expect("selected variables exist");
        for c in converted {
            let var = f.meta().var(&c.var_path).expect("converted var exists");
            raw_bytes += var.raw_size();
            stored_bytes += var.stored_size();
            text_bytes += c.text.len();
            let base = path.rsplit('/').next().unwrap();
            let out = format!(
                "{}_text/{}.{}.csv",
                ds.dir,
                base,
                c.var_path.replace('/', "_")
            );
            cluster.pfs.borrow_mut().create(out.clone(), c.text);
            text_files.push(out);
        }
    }
    let cost = &cluster.sim.cost;
    let conversion_time = cost.lbytes(raw_bytes) * cost.convert_to_text_per_byte;
    ConversionReport {
        text_files,
        text_bytes,
        conversion_time,
        expansion_vs_compressed: text_bytes as f64 / stored_bytes.max(1) as f64,
        cache_capacity_bytes: session.effective_capacity(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::{paper_cluster, stage_nuwrf};
    use wrfgen::WrfSpec;

    #[test]
    fn conversion_produces_parseable_text() {
        let wspec = WrfSpec::tiny(2);
        let mut c = paper_cluster(4, &wspec);
        let ds = stage_nuwrf(&mut c, &wspec, "nuwrf");
        let rep = convert_dataset(&mut c, &ds, &["QR".to_string()]);
        assert_eq!(rep.text_files.len(), 2);
        assert!(rep.conversion_time > 0.0);
        assert!(
            rep.expansion_vs_compressed > 4.0,
            "{}",
            rep.expansion_vs_compressed
        );
        // One shared session cache — the effective capacity is reported
        // once, not multiplied by the number of opened files.
        assert_eq!(rep.cache_capacity_bytes, scifmt::snc::DEFAULT_CACHE_BYTES);
        // The text really parses back.
        let p = c.pfs.borrow();
        let text = p.file(&rep.text_files[0]).unwrap().data.clone();
        let df = rframe::read_table(std::str::from_utf8(&text).unwrap(), true, ',').unwrap();
        assert_eq!(
            df.names(),
            &[
                "lev".to_string(),
                "lat".into(),
                "lon".into(),
                "value".into()
            ]
        );
        assert_eq!(df.n_rows(), 4 * 8 * 8);
    }

    #[test]
    fn conversion_time_is_large_relative_to_data() {
        // At paper scale the conversion takes hours; at any scale it should
        // dwarf a single variable's transfer time.
        let wspec = WrfSpec::tiny(1);
        let mut c = paper_cluster(4, &wspec);
        let ds = stage_nuwrf(&mut c, &wspec, "nuwrf");
        let rep = convert_dataset(&mut c, &ds, &["QR".to_string()]);
        let qr_raw_logical = c.sim.cost.lbytes(4 * 8 * 8 * 4);
        let transfer_at_disk_speed = qr_raw_logical / 120e6;
        assert!(rep.conversion_time > 10.0 * transfer_at_disk_speed);
    }
}
