//! Table I: the data-path matrix of all solutions.

use std::fmt;

/// The five compared solutions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SolutionKind {
    Naive,
    VanillaHadoop,
    PortHadoop,
    SciHadoop,
    SciDp,
}

impl SolutionKind {
    pub const ALL: [SolutionKind; 5] = [
        SolutionKind::Naive,
        SolutionKind::VanillaHadoop,
        SolutionKind::PortHadoop,
        SolutionKind::SciHadoop,
        SolutionKind::SciDp,
    ];

    pub fn name(self) -> &'static str {
        match self {
            SolutionKind::Naive => "Naive",
            SolutionKind::VanillaHadoop => "Vanilla Hadoop",
            SolutionKind::PortHadoop => "PortHadoop",
            SolutionKind::SciHadoop => "SciHadoop",
            SolutionKind::SciDp => "SciDP",
        }
    }

    /// The solution's data path (Table I row).
    pub fn data_path(self) -> DataPathRow {
        match self {
            SolutionKind::Naive => DataPathRow {
                solution: self,
                conversion: true,
                copy: "Sequential",
                processing: "Sequential",
            },
            SolutionKind::VanillaHadoop => DataPathRow {
                solution: self,
                conversion: true,
                copy: "Parallel",
                processing: "Parallel",
            },
            SolutionKind::PortHadoop => DataPathRow {
                solution: self,
                conversion: true,
                copy: "No",
                processing: "Parallel",
            },
            SolutionKind::SciHadoop => DataPathRow {
                solution: self,
                conversion: false,
                copy: "Parallel",
                processing: "Parallel",
            },
            SolutionKind::SciDp => DataPathRow {
                solution: self,
                conversion: false,
                copy: "No",
                processing: "Parallel",
            },
        }
    }
}

impl fmt::Display for SolutionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One row of Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DataPathRow {
    pub solution: SolutionKind,
    pub conversion: bool,
    pub copy: &'static str,
    pub processing: &'static str,
}

/// The full Table I, in the paper's row order.
pub fn data_path_table() -> Vec<DataPathRow> {
    SolutionKind::ALL.iter().map(|s| s.data_path()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_paper() {
        let t = data_path_table();
        assert_eq!(t.len(), 5);
        // SciDP is the only no-conversion, no-copy row.
        let scidp = t
            .iter()
            .find(|r| r.solution == SolutionKind::SciDp)
            .unwrap();
        assert!(!scidp.conversion);
        assert_eq!(scidp.copy, "No");
        assert_eq!(scidp.processing, "Parallel");
        // PortHadoop avoids the copy but not the conversion.
        let ph = t
            .iter()
            .find(|r| r.solution == SolutionKind::PortHadoop)
            .unwrap();
        assert!(ph.conversion);
        assert_eq!(ph.copy, "No");
        // SciHadoop avoids the conversion but not the copy.
        let sh = t
            .iter()
            .find(|r| r.solution == SolutionKind::SciHadoop)
            .unwrap();
        assert!(!sh.conversion);
        assert_eq!(sh.copy, "Parallel");
        // Naive is all-sequential.
        let nv = t
            .iter()
            .find(|r| r.solution == SolutionKind::Naive)
            .unwrap();
        assert_eq!(nv.copy, "Sequential");
        assert_eq!(nv.processing, "Sequential");
    }
}
