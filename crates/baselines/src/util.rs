//! Shared experiment plumbing: cluster construction and dataset staging.

use mapreduce::Cluster;
use pfs::PfsConfig;
use simnet::{ClusterSpec, CostModel};
use wrfgen::{DatasetInfo, WrfSpec};

/// A generated NU-WRF dataset living on the PFS.
#[derive(Clone, Debug)]
pub struct StagedDataset {
    pub dir: String,
    pub spec: WrfSpec,
    pub info: DatasetInfo,
}

impl StagedDataset {
    /// The SciDP input URI for this dataset.
    pub fn pfs_uri(&self) -> String {
        format!("lustre://{}", self.dir)
    }
}

/// Build the paper's testbed (§V-A) with the dataset's scale factor wired
/// into the cost model. `compute_nodes` overrides the Hadoop cluster size
/// (8 in most experiments, 4/8/16 in Fig. 8).
pub fn paper_cluster(compute_nodes: usize, wspec: &WrfSpec) -> Cluster {
    let spec = ClusterSpec {
        compute_nodes,
        ..ClusterSpec::default()
    };
    let pfs_cfg = PfsConfig {
        n_osts: spec.osts,
        // Stripe unit scaled with the dataset so segment counts stay
        // realistic (logical 1 MiB).
        stripe_size: ((1 << 20) as f64 / wspec.scale_factor()).max(64.0) as usize,
        default_stripe_count: spec.osts,
    };
    let cost = CostModel {
        scale: wspec.scale_factor(),
        ..CostModel::default()
    };
    // HDFS block size: logical 128 MB scaled down to real bytes.
    let block = ((128u64 << 20) as f64 / wspec.scale_factor()).max(64.0 * 1024.0) as usize;
    Cluster::new(spec, pfs_cfg, block, 1, cost)
}

/// Generate the NU-WRF dataset onto the cluster's PFS.
pub fn stage_nuwrf(cluster: &mut Cluster, wspec: &WrfSpec, dir: &str) -> StagedDataset {
    let info = wrfgen::generate_dataset(&mut cluster.pfs.borrow_mut(), wspec, dir);
    StagedDataset {
        dir: dir.to_string(),
        spec: wspec.clone(),
        info,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staging_puts_files_on_pfs() {
        let wspec = WrfSpec::tiny(2);
        let mut c = paper_cluster(4, &wspec);
        let ds = stage_nuwrf(&mut c, &wspec, "nuwrf");
        assert_eq!(ds.info.files.len(), 2);
        assert!(c.pfs.borrow().exists(&ds.info.files[0]));
        assert!(ds.pfs_uri().starts_with("lustre://"));
        assert_eq!(c.sim.cost.scale, wspec.scale_factor());
    }
}
