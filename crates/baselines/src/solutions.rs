//! Runners for the five compared solutions (Fig. 5 / Table III).
//!
//! Each runner drives one solution end-to-end on a fresh cluster world and
//! reports its copy time and processing time separately (the paper plots
//! them stacked); conversion time is carried alongside but excluded from
//! totals, as in the paper.

use std::cell::RefCell;
use std::rc::Rc;

use mapreduce::{
    run_job, Cluster, FlatPfsFetcher, InputSplit, Job, JobResult, MrEnv, SplitFetcher, TaskCtx,
};
use scidp::{
    derived_raster, nuwrf_map_fn, nuwrf_reduce_fn, wrap_r_map, wrap_r_reduce, WorkflowConfig,
};
use simnet::{NodeId, Sim};

use crate::convert::ConversionReport;
use crate::datapath::SolutionKind;
use crate::distcp::distcp_blocking;
use crate::scihadoop::scihadoop_splits;
use crate::textjob::{process_text, tag_split, text_map_fn};
use crate::util::StagedDataset;

/// One solution's measured run.
#[derive(Clone, Debug)]
pub struct SolutionReport {
    pub solution: SolutionKind,
    /// Offline conversion time (reported, excluded from [`Self::total`]).
    pub conversion_time: f64,
    pub copy_time: f64,
    pub process_time: f64,
    pub job: Option<JobResult>,
}

impl SolutionReport {
    /// Copy + processing, the quantity Fig. 5 stacks.
    pub fn total(&self) -> f64 {
        self.copy_time + self.process_time
    }
}

fn raster_for(cfg: &WorkflowConfig, scale: f64) -> (u32, u32) {
    if cfg.raster == (0, 0) {
        derived_raster(cfg.logical_image, scale)
    } else {
        cfg.raster
    }
}

/// Reads a whole HDFS file (all blocks, sequentially) — the baselines
/// process one text file per map task to keep records aligned.
struct HdfsWholeFileFetcher {
    path: String,
}

impl SplitFetcher for HdfsWholeFileFetcher {
    fn fetch(&self, env: &MrEnv, sim: &mut Sim, node: NodeId, done: mapreduce::FetchDone) {
        // `read_file` consumes the callback even on a synchronous error, so
        // completion is routed through a take-once cell.
        let done_cell = Rc::new(RefCell::new(Some(done)));
        let dc = done_cell.clone();
        let res = hdfs::read_file(
            sim,
            &env.topo,
            &env.hdfs,
            node,
            &self.path,
            move |sim, data| {
                if let Some(done) = dc.borrow_mut().take() {
                    match data {
                        Ok(data) => done(
                            sim,
                            Ok(mapreduce::FetchResult {
                                input: mapreduce::TaskInput::Bytes(data),
                                charges: Vec::new(),
                                counters: Vec::new(),
                                tag: String::new(),
                            }),
                        ),
                        Err(e) => done(sim, Err(mapreduce::MrError::msg(format!("hdfs: {e}")))),
                    }
                }
            },
        );
        if let Err(e) = res {
            if let Some(done) = done_cell.borrow_mut().take() {
                let e = mapreduce::MrError::msg(format!("hdfs: {e} ({})", self.path));
                sim.after(0.0, move |sim| done(sim, Err(e)));
            }
        }
    }

    fn describe(&self) -> String {
        format!("hdfs-file://{}", self.path)
    }
}

// ---------------------------------------------------------------------------
// Naive
// ---------------------------------------------------------------------------

/// The naive solution: one serial copy stream to a single node, then
/// fully sequential parse+plot on that node (no Hadoop at all).
pub fn run_naive(
    cluster: &mut Cluster,
    conv: &ConversionReport,
    cfg: &WorkflowConfig,
) -> SolutionReport {
    let env = cluster.env();
    let scale = cluster.sim.cost.scale;
    let raster = raster_for(cfg, scale);
    let node = NodeId(0);

    // Phase 1: serial copy of every text file onto node 0's local disk.
    let files = conv.text_files.clone();
    let copy_end: Rc<RefCell<f64>> = Rc::new(RefCell::new(0.0));
    {
        struct St {
            env: MrEnv,
            files: Vec<String>,
            idx: usize,
            copy_end: Rc<RefCell<f64>>,
            process_cfg: (WorkflowConfig, (u32, u32), f64),
            process_idx: usize,
            done_at: Rc<RefCell<f64>>,
        }
        let done_at: Rc<RefCell<f64>> = Rc::new(RefCell::new(0.0));
        let st = Rc::new(RefCell::new(St {
            env: env.clone(),
            files,
            idx: 0,
            copy_end: copy_end.clone(),
            process_cfg: (cfg.clone(), raster, scale),
            process_idx: 0,
            done_at: done_at.clone(),
        }));

        fn copy_step(sim: &mut Sim, st: &Rc<RefCell<St>>, node: NodeId) {
            let (path, env) = {
                let s = st.borrow();
                if s.idx >= s.files.len() {
                    *s.copy_end.borrow_mut() = sim.now().secs();
                    drop(s);
                    process_step(sim, st, node);
                    return;
                }
                (s.files[s.idx].clone(), s.env.clone())
            };
            st.borrow_mut().idx += 1;
            let st2 = st.clone();
            pfs::read_file(sim, &env.topo, &env.pfs, node, &path, move |sim, data| {
                // Land on the local disk.
                let bytes = sim.cost.lbytes(data.len());
                let env2 = st2.borrow().env.clone();
                let disk = env2.topo.path_local_disk(node);
                let st3 = st2.clone();
                sim.start_flow(disk, bytes, move |sim| copy_step(sim, &st3, node));
            })
            .expect("converted text present");
        }

        fn process_step(sim: &mut Sim, st: &Rc<RefCell<St>>, node: NodeId) {
            let (path, env, cfg, raster, scale) = {
                let s = st.borrow();
                if s.process_idx >= s.files.len() {
                    *s.done_at.borrow_mut() = sim.now().secs();
                    return;
                }
                let (c, r, sc) = s.process_cfg.clone();
                (s.files[s.process_idx].clone(), s.env.clone(), c, r, sc)
            };
            st.borrow_mut().process_idx += 1;
            // Local disk read of the staged copy.
            let len = env.pfs.borrow().len_of(&path).expect("copied file");
            let read_flow = sim.cost.lbytes(len);
            let disk = env.topo.path_local_disk(node);
            let st2 = st.clone();
            let env2 = env.clone();
            sim.start_flow(disk, read_flow, move |sim| {
                // The real payload, identical to the Hadoop text path but
                // contention-free (no parallel penalty: the paper notes the
                // naive plot is slightly faster per level).
                let text = env2.pfs.borrow().file(&path).unwrap().data.clone();
                let mut ctx = TaskCtx::standalone(sim.cost.clone());
                ctx.set_tag(path.rsplit('/').next().unwrap_or(&path).to_string());
                process_text(&text, &mut ctx, &cfg, raster, scale)
                    .expect("naive processing succeeds");
                let out_bytes: usize = ctx
                    .take_emitted()
                    .iter()
                    .map(|(k, v)| k.len() + v.approx_bytes())
                    .sum();
                let compute = ctx.total_charge_s();
                let st3 = st2.clone();
                let env3 = env2.clone();
                sim.after(compute, move |sim| {
                    // Write images to the local disk.
                    let w = sim.cost.lbytes(out_bytes);
                    let disk = env3.topo.path_local_disk(node);
                    sim.start_flow(disk, w, move |sim| process_step(sim, &st3, node));
                });
            });
        }

        copy_step(&mut cluster.sim, &st, node);
        cluster.run();
        let copy_time = *copy_end.borrow();
        let end = *done_at.borrow();
        SolutionReport {
            solution: SolutionKind::Naive,
            conversion_time: conv.conversion_time,
            copy_time,
            process_time: end - copy_time,
            job: None,
        }
    }
}

// ---------------------------------------------------------------------------
// Vanilla Hadoop
// ---------------------------------------------------------------------------

/// Vanilla Hadoop: parallel distcp of the converted text to HDFS, then a
/// MapReduce job parsing the text with `read.table` and plotting.
pub fn run_vanilla(
    cluster: &mut Cluster,
    conv: &ConversionReport,
    cfg: &WorkflowConfig,
) -> SolutionReport {
    let scale = cluster.sim.cost.scale;
    let raster = raster_for(cfg, scale);
    let streams = cluster.topo.spec.total_slots();
    let pairs: Vec<(String, String)> = conv
        .text_files
        .iter()
        .map(|f| {
            (
                f.clone(),
                format!("staging_text/{}", f.rsplit('/').next().unwrap()),
            )
        })
        .collect();
    let staged: Vec<String> = pairs.iter().map(|(_, d)| d.clone()).collect();
    let copy = distcp_blocking(cluster, pairs, streams);
    let env = cluster.env();
    let splits: Vec<InputSplit> = staged
        .iter()
        .map(|p| {
            let len = env.hdfs.borrow().namenode.file_len(p).unwrap();
            tag_split(
                InputSplit {
                    length: len,
                    locations: {
                        let h = env.hdfs.borrow();
                        let blocks = h.namenode.blocks(p).unwrap();
                        blocks
                            .iter()
                            .flat_map(|b| b.locations().iter().copied())
                            .fold(Vec::new(), |mut acc, n| {
                                if !acc.contains(&n) {
                                    acc.push(n);
                                }
                                acc
                            })
                    },
                    fetcher: Rc::new(HdfsWholeFileFetcher { path: p.clone() }),
                },
                p.rsplit('/').next().unwrap().to_string(),
            )
        })
        .collect();
    let job = Job {
        name: "vanilla-imgonly".into(),
        splits,
        map_fn: text_map_fn(cfg, raster, scale),
        reduce_fn: Some(wrap_r_reduce(
            nuwrf_reduce_fn(),
            cfg.logical_image,
            raster,
            scale,
        )),
        n_reducers: cfg.n_reducers,
        output_dir: format!("{}_vanilla", cfg.output_dir),
        spill_to_pfs: false,
        output_to_pfs: false,
        ft: mapreduce::FtConfig::default(),
        stream: mapreduce::StreamConfig::default(),
        shuffle: None,
    };
    let result = run_job(cluster, job).expect("vanilla job succeeds");
    SolutionReport {
        solution: SolutionKind::VanillaHadoop,
        conversion_time: conv.conversion_time,
        copy_time: copy.elapsed,
        process_time: result.elapsed(),
        job: Some(result),
    }
}

// ---------------------------------------------------------------------------
// PortHadoop
// ---------------------------------------------------------------------------

/// PortHadoop: no copy — virtual blocks map the *text* files on the PFS and
/// each map task fetches its file directly (Yang et al., Big Data'15). The
/// conversion is still unavoidable because PortHadoop has no scientific
/// format support.
pub fn run_porthadoop(
    cluster: &mut Cluster,
    conv: &ConversionReport,
    cfg: &WorkflowConfig,
) -> SolutionReport {
    run_porthadoop_with_chunks(cluster, conv, cfg, 1)
}

/// PortHadoop with an explicit PFS read granularity (`sequential_chunks`
/// back-to-back requests per block) — the read-size ablation of §III-A.3.
pub fn run_porthadoop_with_chunks(
    cluster: &mut Cluster,
    conv: &ConversionReport,
    cfg: &WorkflowConfig,
    sequential_chunks: usize,
) -> SolutionReport {
    let scale = cluster.sim.cost.scale;
    let raster = raster_for(cfg, scale);
    let env = cluster.env();
    let splits: Vec<InputSplit> = conv
        .text_files
        .iter()
        .map(|p| {
            let len = env.pfs.borrow().len_of(p).unwrap();
            tag_split(
                InputSplit {
                    length: len as u64,
                    locations: Vec::new(), // virtual blocks carry none
                    fetcher: Rc::new(FlatPfsFetcher {
                        pfs_path: p.clone(),
                        offset: 0,
                        len: len as u64,
                        sequential_chunks,
                    }),
                },
                p.rsplit('/').next().unwrap().to_string(),
            )
        })
        .collect();
    let job = Job {
        name: "porthadoop-imgonly".into(),
        splits,
        map_fn: text_map_fn(cfg, raster, scale),
        reduce_fn: Some(wrap_r_reduce(
            nuwrf_reduce_fn(),
            cfg.logical_image,
            raster,
            scale,
        )),
        n_reducers: cfg.n_reducers,
        output_dir: format!("{}_porthadoop", cfg.output_dir),
        spill_to_pfs: false,
        output_to_pfs: false,
        ft: mapreduce::FtConfig::default(),
        stream: mapreduce::StreamConfig::default(),
        shuffle: None,
    };
    let result = run_job(cluster, job).expect("porthadoop job succeeds");
    SolutionReport {
        solution: SolutionKind::PortHadoop,
        conversion_time: conv.conversion_time,
        copy_time: 0.0,
        process_time: result.elapsed(),
        job: Some(result),
    }
}

// ---------------------------------------------------------------------------
// SciHadoop
// ---------------------------------------------------------------------------

/// SciHadoop: no conversion, but a whole-file parallel copy to HDFS
/// (all 23 variables — the redundant I/O of §IV-B), then scientific-aware
/// processing identical to SciDP's R program.
pub fn run_scihadoop(
    cluster: &mut Cluster,
    ds: &StagedDataset,
    cfg: &WorkflowConfig,
) -> SolutionReport {
    let scale = cluster.sim.cost.scale;
    let raster = raster_for(cfg, scale);
    let streams = cluster.topo.spec.total_slots();
    let pairs: Vec<(String, String)> = ds
        .info
        .files
        .iter()
        .map(|f| {
            (
                f.clone(),
                format!("staging_bin/{}", f.rsplit('/').next().unwrap()),
            )
        })
        .collect();
    let copy = distcp_blocking(cluster, pairs.clone(), streams);
    let env = cluster.env();
    let mut splits = Vec::new();
    for (src, dst) in &pairs {
        let bytes = cluster.pfs.borrow().file(src).unwrap().data.clone();
        let meta = scifmt::SncMeta::parse(&bytes).expect("staged container parses");
        splits.extend(scihadoop_splits(&env, &meta, dst, &cfg.variables));
    }
    let job = Job {
        name: "scihadoop-imgonly".into(),
        splits,
        map_fn: wrap_r_map(nuwrf_map_fn(cfg), cfg.logical_image, raster, scale),
        reduce_fn: Some(wrap_r_reduce(
            nuwrf_reduce_fn(),
            cfg.logical_image,
            raster,
            scale,
        )),
        n_reducers: cfg.n_reducers,
        output_dir: format!("{}_scihadoop", cfg.output_dir),
        spill_to_pfs: false,
        output_to_pfs: false,
        ft: mapreduce::FtConfig::default(),
        stream: mapreduce::StreamConfig::default(),
        shuffle: None,
    };
    let result = run_job(cluster, job).expect("scihadoop job succeeds");
    SolutionReport {
        solution: SolutionKind::SciHadoop,
        conversion_time: 0.0,
        copy_time: copy.elapsed,
        process_time: result.elapsed(),
        job: Some(result),
    }
}

// ---------------------------------------------------------------------------
// SciDP
// ---------------------------------------------------------------------------

/// SciDP itself, wrapped in the common report shape.
pub fn run_scidp_solution(
    cluster: &mut Cluster,
    ds: &StagedDataset,
    cfg: &WorkflowConfig,
) -> SolutionReport {
    let rep = scidp::run_scidp(cluster, &ds.pfs_uri(), cfg).expect("scidp workflow succeeds");
    SolutionReport {
        solution: SolutionKind::SciDp,
        conversion_time: 0.0,
        copy_time: 0.0,
        process_time: rep.total_time(),
        job: Some(rep.job),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::convert_dataset;
    use crate::util::{paper_cluster, stage_nuwrf};
    use wrfgen::WrfSpec;

    fn cfg() -> WorkflowConfig {
        WorkflowConfig {
            n_reducers: 2,
            ..WorkflowConfig::img_only(["QR"])
        }
    }

    fn run_all(timestamps: usize) -> Vec<SolutionReport> {
        let wspec = WrfSpec::tiny(timestamps);
        let cfg = cfg();
        let mut out = Vec::new();
        // Naive
        {
            let mut c = paper_cluster(8, &wspec);
            let ds = stage_nuwrf(&mut c, &wspec, "nuwrf");
            let conv = convert_dataset(&mut c, &ds, &cfg.variables);
            out.push(run_naive(&mut c, &conv, &cfg));
        }
        // Vanilla
        {
            let mut c = paper_cluster(8, &wspec);
            let ds = stage_nuwrf(&mut c, &wspec, "nuwrf");
            let conv = convert_dataset(&mut c, &ds, &cfg.variables);
            out.push(run_vanilla(&mut c, &conv, &cfg));
        }
        // PortHadoop
        {
            let mut c = paper_cluster(8, &wspec);
            let ds = stage_nuwrf(&mut c, &wspec, "nuwrf");
            let conv = convert_dataset(&mut c, &ds, &cfg.variables);
            out.push(run_porthadoop(&mut c, &conv, &cfg));
        }
        // SciHadoop
        {
            let mut c = paper_cluster(8, &wspec);
            let ds = stage_nuwrf(&mut c, &wspec, "nuwrf");
            out.push(run_scihadoop(&mut c, &ds, &cfg));
        }
        // SciDP
        {
            let mut c = paper_cluster(8, &wspec);
            let ds = stage_nuwrf(&mut c, &wspec, "nuwrf");
            out.push(run_scidp_solution(&mut c, &ds, &cfg));
        }
        out
    }

    #[test]
    fn paper_ordering_holds() {
        let reports = run_all(4);
        let t = |k: SolutionKind| {
            reports
                .iter()
                .find(|r| r.solution == k)
                .map(|r| r.total())
                .unwrap()
        };
        let naive = t(SolutionKind::Naive);
        let vanilla = t(SolutionKind::VanillaHadoop);
        let porthadoop = t(SolutionKind::PortHadoop);
        let scihadoop = t(SolutionKind::SciHadoop);
        let scidp = t(SolutionKind::SciDp);
        // Fig. 5 / Table III shape: naive ≫ vanilla > porthadoop >
        // scihadoop > scidp, with SciDP winning by a large factor.
        assert!(naive > vanilla, "naive {naive} vs vanilla {vanilla}");
        assert!(
            vanilla > porthadoop,
            "vanilla {vanilla} vs port {porthadoop}"
        );
        assert!(
            porthadoop > scihadoop,
            "port {porthadoop} vs scihadoop {scihadoop}"
        );
        assert!(scihadoop > scidp, "scihadoop {scihadoop} vs scidp {scidp}");
        // (the tiny 4-file test dataset limits the parallelism advantage;
        // fig5's 96-768 file runs reproduce the paper's hundreds-x.)
        assert!(
            naive / scidp > 8.0,
            "naive/scidp speedup too small: {}",
            naive / scidp
        );
        // At this tiny scale (4 files, 3 variables) the copy advantage is
        // compressed; the fig5 harness (96-768 files, 23 variables)
        // reproduces the paper's 6-8x. Here we only require the ordering
        // plus a visible gap.
        assert!(
            scihadoop / scidp > 1.1,
            "scihadoop/scidp speedup too small: {}",
            scihadoop / scidp
        );
    }

    #[test]
    fn conversion_is_reported_but_not_counted() {
        let reports = run_all(2);
        for r in &reports {
            match r.solution {
                SolutionKind::Naive | SolutionKind::VanillaHadoop | SolutionKind::PortHadoop => {
                    assert!(r.conversion_time > 0.0, "{:?}", r.solution);
                    assert!(r.total() < r.conversion_time + r.total());
                }
                _ => assert_eq!(r.conversion_time, 0.0),
            }
        }
    }

    #[test]
    fn copy_structure_matches_table1() {
        let reports = run_all(2);
        let by = |k: SolutionKind| reports.iter().find(|r| r.solution == k).unwrap().clone();
        assert!(by(SolutionKind::Naive).copy_time > 0.0);
        assert!(by(SolutionKind::VanillaHadoop).copy_time > 0.0);
        assert_eq!(by(SolutionKind::PortHadoop).copy_time, 0.0);
        assert!(by(SolutionKind::SciHadoop).copy_time > 0.0);
        assert_eq!(by(SolutionKind::SciDp).copy_time, 0.0);
        // SciHadoop copies whole files (23x one variable's data): its copy
        // must dwarf vanilla's one-variable text copy per byte moved...
        // at minimum, it must be nonzero and bigger than SciDP's.
    }
}
