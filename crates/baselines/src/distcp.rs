//! `distcp`-style PFS ↔ HDFS copying, with configurable parallelism.
//!
//! The copy step of vanilla Hadoop and SciHadoop ("accelerated by the
//! parallel copy in distcp") and the naive solution's one-stream serial
//! copy are both expressed here: a work queue of files drained by
//! `streams` concurrent copiers spread round-robin over the compute nodes.

use std::cell::RefCell;
use std::rc::Rc;

use mapreduce::{Cluster, MrEnv};
use simnet::{NodeId, Sim};

/// Copy outcome.
#[derive(Clone, Debug)]
pub struct CopyReport {
    /// Virtual seconds from start to the last commit.
    pub elapsed: f64,
    /// Real bytes copied.
    pub bytes: u64,
    pub files: usize,
}

struct CopyState {
    env: MrEnv,
    queue: Vec<(String, String)>,
    next: usize,
    active: usize,
    bytes: u64,
    start: f64,
    #[allow(clippy::type_complexity)]
    done: Option<Box<dyn FnOnce(&mut Sim, CopyReport)>>,
}

type Shared = Rc<RefCell<CopyState>>;

#[allow(clippy::only_used_in_recursion)]
fn pump(sim: &mut Sim, st: &Shared, worker: usize, streams: usize) {
    let (src, dst, node) = {
        let mut s = st.borrow_mut();
        if s.next >= s.queue.len() {
            if s.active == 0 {
                if let Some(cb) = s.done.take() {
                    let rep = CopyReport {
                        elapsed: sim.now().secs() - s.start,
                        bytes: s.bytes,
                        files: s.queue.len(),
                    };
                    drop(s);
                    cb(sim, rep);
                }
            }
            return;
        }
        let (src, dst) = s.queue[s.next].clone();
        s.next += 1;
        s.active += 1;
        let n_nodes = s.env.topo.n_compute();
        (src, dst, NodeId((worker % n_nodes) as u32))
    };
    let env = st.borrow().env.clone();
    let st2 = st.clone();
    pfs::read_file(sim, &env.topo, &env.pfs, node, &src, move |sim, data| {
        let len = data.len() as u64;
        let env2 = st2.borrow().env.clone();
        let st3 = st2.clone();
        hdfs::write_file(sim, &env2.topo, &env2.hdfs, node, dst, data, move |sim| {
            {
                let mut s = st3.borrow_mut();
                s.active -= 1;
                s.bytes += len;
            }
            pump(sim, &st3, worker, streams);
        })
        .expect("copy destination free");
    })
    .expect("copy source exists");
}

/// Copy `(pfs_src, hdfs_dst)` pairs with `streams` concurrent copiers.
/// `streams = 1` reproduces the naive serial copy.
pub fn distcp(
    cluster: &mut Cluster,
    files: Vec<(String, String)>,
    streams: usize,
    done: impl FnOnce(&mut Sim, CopyReport) + 'static,
) {
    assert!(streams >= 1);
    let st: Shared = Rc::new(RefCell::new(CopyState {
        env: cluster.env(),
        queue: files,
        next: 0,
        active: 0,
        bytes: 0,
        start: cluster.sim.now().secs(),
        done: Some(Box::new(done)),
    }));
    let n = streams.min(st.borrow().queue.len()).max(1);
    for w in 0..n {
        pump(&mut cluster.sim, &st, w, streams);
    }
}

/// Convenience: run the copy to completion, return the report.
pub fn distcp_blocking(
    cluster: &mut Cluster,
    files: Vec<(String, String)>,
    streams: usize,
) -> CopyReport {
    let out = Rc::new(RefCell::new(None));
    let o = out.clone();
    distcp(cluster, files, streams, move |_, r| {
        *o.borrow_mut() = Some(r);
    });
    cluster.run();
    let report = out.borrow_mut().take().expect("copy completed");
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::{paper_cluster, stage_nuwrf};
    use wrfgen::WrfSpec;

    fn staged_cluster() -> (Cluster, Vec<(String, String)>) {
        let wspec = WrfSpec::tiny(4);
        let mut c = paper_cluster(4, &wspec);
        let ds = stage_nuwrf(&mut c, &wspec, "nuwrf");
        let files: Vec<(String, String)> = ds
            .info
            .files
            .iter()
            .map(|f| {
                (
                    f.clone(),
                    format!("staging/{}", f.rsplit('/').next().unwrap()),
                )
            })
            .collect();
        (c, files)
    }

    #[test]
    fn copies_land_on_hdfs_bytes_exact() {
        let (mut c, files) = staged_cluster();
        let rep = distcp_blocking(&mut c, files.clone(), 4);
        assert_eq!(rep.files, 4);
        assert!(rep.elapsed > 0.0);
        let h = c.hdfs.borrow();
        for (src, dst) in &files {
            let src_len = c.pfs.borrow().len_of(src).unwrap() as u64;
            assert_eq!(h.namenode.file_len(dst).unwrap(), src_len);
        }
        assert_eq!(rep.bytes as usize, c.hdfs.borrow().datanodes.total_bytes());
    }

    #[test]
    fn parallel_copy_beats_serial() {
        let (mut c1, files1) = staged_cluster();
        let serial = distcp_blocking(&mut c1, files1, 1).elapsed;
        let (mut c2, files2) = staged_cluster();
        let parallel = distcp_blocking(&mut c2, files2, 8).elapsed;
        assert!(
            serial > 1.5 * parallel,
            "parallel copy not faster: serial={serial}, parallel={parallel}"
        );
    }

    #[test]
    fn empty_copy_completes() {
        let wspec = WrfSpec::tiny(1);
        let mut c = paper_cluster(2, &wspec);
        let rep = distcp_blocking(&mut c, vec![], 4);
        assert_eq!(rep.files, 0);
        assert_eq!(rep.bytes, 0);
    }
}
