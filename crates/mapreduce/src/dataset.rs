//! Typed dataset/operator layer over the DAG scheduler.
//!
//! A [`Dataset`] is a lazy plan of keyed `(String, Payload)` records:
//! narrow operators (`map`, `filter`) fuse into their upstream stage, wide
//! operators (`reduce_by_key`, `group_by_key`, `join`, `map_groups`)
//! introduce a shuffle boundary where [`crate::dag`] cuts the plan into
//! stages. Nothing runs until the plan is handed to
//! [`crate::dag::run_dag`].
//!
//! Keys shuffle with the same FNV-1a `stable_hash(key) % n` the classic
//! single-job engine uses, and grouped stages iterate keys in `BTreeMap`
//! order — so a DAG produces byte-identical output to the equivalent
//! hand-chained jobs.

use std::rc::Rc;

use crate::input::{InputSplit, TaskInput};
use crate::job::{MrError, Payload, TaskCtx};

/// Decodes one task's fetched input into keyed records (the record-reader
/// of a source stage).
pub type RecordReadFn =
    Rc<dyn Fn(TaskInput, &mut TaskCtx) -> Result<Vec<(String, Payload)>, MrError>>;

/// Narrow 1→N transform of one record.
pub type PairMapFn =
    Rc<dyn Fn(&str, Payload, &mut TaskCtx) -> Result<Vec<(String, Payload)>, MrError>>;

/// Narrow predicate over one record.
pub type PairFilterFn = Rc<dyn Fn(&str, &Payload) -> bool>;

/// Wide transform of one key group. Values arrive tagged with the index of
/// the parent dataset they came from (always 0 except for joins), in
/// deterministic (parent, map partition, emit) order.
pub type GroupFn =
    Rc<dyn Fn(&str, Vec<(u8, Payload)>, &mut TaskCtx) -> Result<Vec<(String, Payload)>, MrError>>;

/// Combines one key's values into a single value (`reduce_by_key`).
pub type AggFn = Rc<dyn Fn(&str, Vec<Payload>, &mut TaskCtx) -> Result<Payload, MrError>>;

/// One node of the lazy plan.
pub(crate) enum PlanNode {
    /// Leaf: splits plus the record reader that decodes them.
    Source {
        splits: Vec<InputSplit>,
        read: RecordReadFn,
    },
    Map {
        parent: Dataset,
        f: PairMapFn,
    },
    Filter {
        parent: Dataset,
        pred: PairFilterFn,
    },
    /// Shuffle boundary: every parent hash-partitions its records into
    /// `n_partitions` buckets; `group` runs once per key downstream.
    Shuffle {
        parents: Vec<Dataset>,
        n_partitions: usize,
        group: GroupFn,
        /// Operator name for stage labels/traces.
        op: &'static str,
    },
}

/// A lazy, immutable, shareable plan of keyed records.
#[derive(Clone)]
pub struct Dataset {
    pub(crate) node: Rc<PlanNode>,
}

impl Dataset {
    fn wrap(node: PlanNode) -> Dataset {
        Dataset {
            node: Rc::new(node),
        }
    }

    /// A source dataset: one task per split, decoded by `read`.
    pub fn from_splits(splits: Vec<InputSplit>, read: RecordReadFn) -> Dataset {
        Dataset::wrap(PlanNode::Source { splits, read })
    }

    /// Convenience source: each split's raw bytes become one record keyed
    /// by the split's tag (empty unless the fetcher sets one).
    pub fn from_split_bytes(splits: Vec<InputSplit>) -> Dataset {
        Dataset::from_splits(
            splits,
            Rc::new(|input, ctx| {
                let TaskInput::Bytes(b) = input else {
                    return Err(MrError::msg("from_split_bytes: expected byte input"));
                };
                Ok(vec![(ctx.input_tag().to_string(), Payload::Bytes(b))])
            }),
        )
    }

    /// Narrow 1→N transform (fused into the upstream stage).
    pub fn map(&self, f: PairMapFn) -> Dataset {
        Dataset::wrap(PlanNode::Map {
            parent: self.clone(),
            f,
        })
    }

    /// Narrow filter (fused into the upstream stage).
    pub fn filter(&self, pred: PairFilterFn) -> Dataset {
        Dataset::wrap(PlanNode::Filter {
            parent: self.clone(),
            pred,
        })
    }

    /// General wide operator: shuffle into `n_partitions` and run `group`
    /// once per key (in key order) on the receiving stage.
    pub fn map_groups(&self, n_partitions: usize, group: GroupFn) -> Dataset {
        assert!(n_partitions > 0, "map_groups: n_partitions must be >= 1");
        Dataset::wrap(PlanNode::Shuffle {
            parents: vec![self.clone()],
            n_partitions,
            group,
            op: "map_groups",
        })
    }

    /// Shuffle + per-key aggregation: each key's values collapse to one
    /// record via `agg`.
    pub fn reduce_by_key(&self, n_partitions: usize, agg: AggFn) -> Dataset {
        assert!(n_partitions > 0, "reduce_by_key: n_partitions must be >= 1");
        let group: GroupFn = Rc::new(move |key, tagged, ctx| {
            let values = tagged.into_iter().map(|(_, v)| v).collect();
            Ok(vec![(key.to_string(), agg(key, values, ctx)?)])
        });
        Dataset::wrap(PlanNode::Shuffle {
            parents: vec![self.clone()],
            n_partitions,
            group,
            op: "reduce_by_key",
        })
    }

    /// Shuffle + grouping: each key becomes one record whose value is its
    /// byte values concatenated with length prefixes (see [`encode_group`]
    /// / [`decode_group`]). Byte payloads only.
    pub fn group_by_key(&self, n_partitions: usize) -> Dataset {
        assert!(n_partitions > 0, "group_by_key: n_partitions must be >= 1");
        let group: GroupFn = Rc::new(|key, tagged, _ctx| {
            let mut values = Vec::new();
            for (_, v) in tagged {
                match v {
                    Payload::Bytes(b) => values.push(b),
                    Payload::Frame(_) => {
                        return Err(MrError::msg(format!(
                            "group_by_key: frame payload under key {key:?} (bytes only)"
                        )))
                    }
                }
            }
            Ok(vec![(
                key.to_string(),
                Payload::Bytes(encode_group(&values)),
            )])
        });
        Dataset::wrap(PlanNode::Shuffle {
            parents: vec![self.clone()],
            n_partitions,
            group,
            op: "group_by_key",
        })
    }

    /// Inner hash join on key: every (left value, right value) combination
    /// of a key becomes one record, value encoded via [`encode_join`].
    /// Left/right order follows each side's deterministic shuffle order.
    /// Byte payloads only.
    pub fn join(&self, right: &Dataset, n_partitions: usize) -> Dataset {
        assert!(n_partitions > 0, "join: n_partitions must be >= 1");
        let group: GroupFn = Rc::new(|key, tagged, _ctx| {
            let mut lefts: Vec<Vec<u8>> = Vec::new();
            let mut rights: Vec<Vec<u8>> = Vec::new();
            for (tag, v) in tagged {
                let Payload::Bytes(b) = v else {
                    return Err(MrError::msg(format!(
                        "join: frame payload under key {key:?} (bytes only)"
                    )));
                };
                if tag == 0 {
                    lefts.push(b);
                } else {
                    rights.push(b);
                }
            }
            let mut out = Vec::with_capacity(lefts.len() * rights.len());
            for l in &lefts {
                for r in &rights {
                    out.push((key.to_string(), Payload::Bytes(encode_join(l, r))));
                }
            }
            Ok(out)
        });
        Dataset::wrap(PlanNode::Shuffle {
            parents: vec![self.clone(), right.clone()],
            n_partitions,
            group,
            op: "join",
        })
    }
}

/// Concatenate byte values with u32-LE length prefixes (the `group_by_key`
/// value encoding).
pub fn encode_group(values: &[Vec<u8>]) -> Vec<u8> {
    let total: usize = values.iter().map(|v| 4 + v.len()).sum();
    let mut out = Vec::with_capacity(total);
    for v in values {
        out.extend_from_slice(&(v.len() as u32).to_le_bytes());
        out.extend_from_slice(v);
    }
    out
}

/// Inverse of [`encode_group`].
pub fn decode_group(mut bytes: &[u8]) -> Result<Vec<Vec<u8>>, MrError> {
    let mut out = Vec::new();
    while !bytes.is_empty() {
        let (head, rest) = bytes.split_at_checked(4).ok_or_else(|| {
            MrError::msg(format!(
                "decode_group: truncated length prefix ({} bytes left)",
                bytes.len()
            ))
        })?;
        let mut len_buf = [0u8; 4];
        len_buf.copy_from_slice(head);
        let len = u32::from_le_bytes(len_buf) as usize;
        let (value, rest) = rest.split_at_checked(len).ok_or_else(|| {
            MrError::msg(format!("decode_group: value truncated (want {len} bytes)"))
        })?;
        out.push(value.to_vec());
        bytes = rest;
    }
    Ok(out)
}

/// Encode one joined (left, right) byte pair.
pub fn encode_join(left: &[u8], right: &[u8]) -> Vec<u8> {
    encode_group(&[left.to_vec(), right.to_vec()])
}

/// Inverse of [`encode_join`].
pub fn decode_join(bytes: &[u8]) -> Result<(Vec<u8>, Vec<u8>), MrError> {
    let parts = decode_group(bytes)?;
    let mut it = parts.into_iter();
    match (it.next(), it.next(), it.next()) {
        (Some(l), Some(r), None) => Ok((l, r)),
        _ => Err(MrError::msg("decode_join: expected exactly two parts")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_roundtrip() {
        let vals = vec![b"a".to_vec(), Vec::new(), b"longer value".to_vec()];
        assert_eq!(decode_group(&encode_group(&vals)).unwrap(), vals);
        assert_eq!(decode_group(&[]).unwrap(), Vec::<Vec<u8>>::new());
        assert!(decode_group(&[1, 0]).is_err(), "truncated prefix");
        assert!(decode_group(&[5, 0, 0, 0, 1]).is_err(), "truncated value");
    }

    #[test]
    fn join_roundtrip() {
        let enc = encode_join(b"left", b"r");
        assert_eq!(
            decode_join(&enc).unwrap(),
            (b"left".to_vec(), b"r".to_vec())
        );
        let three = encode_group(&[b"a".to_vec(), b"b".to_vec(), b"c".to_vec()]);
        assert!(decode_join(&three).is_err());
    }
}
