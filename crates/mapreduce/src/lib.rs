//! # mapreduce — a Hadoop-like MapReduce engine on the simulated cluster
//!
//! Reproduces the execution substrate SciDP plugs into: jobs are split into
//! map tasks by an input format, scheduled onto per-node task slots with
//! **data-locality preference**, executed (the map/reduce closures really
//! run on real data), shuffled, reduced and written back to HDFS — while
//! every I/O goes through [`simnet`] flows and every compute phase is
//! charged through the [`simnet::CostModel`].
//!
//! SciDP's two Hadoop modifications map onto two extension points here:
//!
//! * `FileInputFormat.addInputPath` → any code can construct
//!   [`input::InputSplit`]s with a custom [`input::SplitFetcher`] — that is
//!   what `scidp`'s File Explorer / Data Mapper do;
//! * `MapTask`'s record reader → the fetcher runs *inside the task*,
//!   so SciDP's PFS Reader naturally overlaps its PFS reads with other
//!   tasks' compute, exactly the paper's overlap argument (§III-A.3).
//!
//! Per-task phase timings (startup / read / convert / plot / ... / spill)
//! are recorded in [`job::TaskReport`]s — Figure 7 is generated from them.

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod cluster;
pub mod counters;
pub mod dag;
pub mod dataset;
pub mod input;
pub mod job;

pub use cluster::{Cluster, MrEnv};
pub use counters::{keys as counter_keys, Counters};
pub use dag::{run_dag, submit_dag, DagJob, DagResult, ShuffleSink, StageRun};
pub use dataset::{
    decode_group, decode_join, encode_group, encode_join, AggFn, Dataset, GroupFn, PairFilterFn,
    PairMapFn, RecordReadFn,
};
pub use input::{
    hdfs_file_splits, read_event_counters, retag_stream, FetchDone, FetchPiece, FetchResult,
    FlatPfsFetcher, HdfsBlockFetcher, InMemoryFetcher, InputSplit, PieceDone, PieceStream,
    SplitFetcher, StreamFallback, TaskInput,
};
pub use job::{
    run_job, submit_job, submit_job_env, FtConfig, Job, JobResult, MapFn, MrError, Payload,
    ReduceFn, StreamConfig, TaskCtx, TaskKind, TaskReport,
};
