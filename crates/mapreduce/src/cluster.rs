//! The combined simulated-cluster world: simulator + topology + both file
//! systems. Every experiment builds one of these.

use std::rc::Rc;

use pfs::{Pfs, PfsConfig, SharedPfs};
use simnet::{ClusterCache, ClusterSpec, CostModel, FlowNet, Sim, SimTime, Topology};

use hdfs::{Hdfs, SharedHdfs};

/// Handles a task needs to reach the world from inside sim callbacks.
#[derive(Clone)]
pub struct MrEnv {
    pub topo: Topology,
    pub pfs: SharedPfs,
    pub hdfs: SharedHdfs,
    /// Concurrent task slots per compute node (8 in the paper).
    pub slots_per_node: usize,
    /// Cluster-wide chunk-cache registry shared by every job and DAG stage
    /// in this world (disabled — zero capacity — unless a workload turns
    /// it on via [`Cluster::cluster_cache`]).
    pub cluster_cache: Rc<ClusterCache>,
}

/// The full simulated world: one Hadoop cluster + one PFS storage cluster.
pub struct Cluster {
    pub sim: Sim,
    pub topo: Topology,
    pub pfs: SharedPfs,
    pub hdfs: SharedHdfs,
    /// Cluster chunk-cache tier (see [`simnet::ClusterCache`]); disabled
    /// by default so existing workloads are timing-identical.
    pub cluster_cache: Rc<ClusterCache>,
}

impl Cluster {
    /// Build a cluster. `block_size` is the HDFS block size in *real*
    /// bytes; `replication` is `dfs.replication` (the paper uses 1).
    pub fn new(
        spec: ClusterSpec,
        pfs_cfg: PfsConfig,
        block_size: usize,
        replication: usize,
        cost: CostModel,
    ) -> Cluster {
        assert_eq!(
            pfs_cfg.n_osts, spec.osts,
            "PFS OST count must match the topology"
        );
        let mut sim = Sim::with_cost(cost);
        let mut net = std::mem::replace(&mut sim.net, FlowNet::new());
        let topo = Topology::build(&mut net, spec.clone());
        sim.net = net;
        let pfs = Pfs::shared(pfs_cfg);
        let hdfs = Hdfs::shared(spec.compute_nodes, block_size, replication);
        Cluster {
            sim,
            topo,
            pfs,
            hdfs,
            cluster_cache: Rc::new(ClusterCache::new(0)),
        }
    }

    /// Turn on the cluster chunk-cache tier with `per_node_bytes` of chunk
    /// memory per compute node.
    pub fn enable_cluster_cache(&self, per_node_bytes: u64) {
        self.cluster_cache.set_per_node_capacity(per_node_bytes);
    }

    /// Paper-default cluster (§V-A): 8 Hadoop nodes, 2 OSS / 24 OSTs.
    pub fn paper_default(block_size: usize, cost: CostModel) -> Cluster {
        let spec = ClusterSpec::default();
        let pfs_cfg = PfsConfig {
            n_osts: spec.osts,
            ..PfsConfig::default()
        };
        Cluster::new(spec, pfs_cfg, block_size, 1, cost)
    }

    /// Shared handles for tasks.
    pub fn env(&self) -> MrEnv {
        MrEnv {
            topo: self.topo.clone(),
            pfs: self.pfs.clone(),
            hdfs: self.hdfs.clone(),
            slots_per_node: self.topo.spec.slots_per_node,
            cluster_cache: Rc::clone(&self.cluster_cache),
        }
    }

    /// Drain the event queue; returns final virtual time.
    pub fn run(&mut self) -> SimTime {
        self.sim.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_shape() {
        let c = Cluster::paper_default(1 << 20, CostModel::default());
        assert_eq!(c.topo.n_compute(), 8);
        assert_eq!(c.topo.n_osts(), 24);
        assert_eq!(c.env().slots_per_node, 8);
        assert_eq!(c.hdfs.borrow().datanodes.n_nodes(), 8);
    }

    #[test]
    #[should_panic(expected = "OST count")]
    fn mismatched_ost_config_panics() {
        let spec = ClusterSpec::default();
        let pfs_cfg = PfsConfig {
            n_osts: spec.osts + 1,
            ..PfsConfig::default()
        };
        Cluster::new(spec, pfs_cfg, 1024, 1, CostModel::default());
    }
}
