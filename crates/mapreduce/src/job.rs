//! The job driver: slot scheduling, map execution, shuffle, reduce, output.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::rc::Rc;

use simnet::{ChunkKey, NodeId, Sim};

use crate::cluster::{Cluster, MrEnv};
use crate::counters::{keys, Counters};
use crate::input::{InputSplit, PieceStream, TaskInput};

/// Task- or job-level failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MrError {
    /// Free-form task failure (fetch error, user code error, injected
    /// fault) — the catch-all the engine has always reported.
    Msg(String),
    /// Graceful-degradation floor breached: the cluster's live task slots
    /// fell below [`FtConfig::min_live_slots`], so the driver failed fast
    /// instead of limping on (or stalling) at hopeless parallelism.
    QuorumLost { live_slots: usize, floor: usize },
}

impl MrError {
    /// A free-form failure (the old `MrError::msg(msg)` constructor).
    pub fn msg(m: impl Into<String>) -> MrError {
        MrError::Msg(m.into())
    }

    /// The failure text without the `Display` prefix — what upper layers
    /// match on to classify errors.
    pub fn message(&self) -> String {
        match self {
            MrError::Msg(m) => m.clone(),
            MrError::QuorumLost { live_slots, floor } => {
                format!("quorum lost: {live_slots} live slot(s), floor is {floor}")
            }
        }
    }
}

impl fmt::Display for MrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task failed: {}", self.message())
    }
}

impl std::error::Error for MrError {}

/// A value travelling through the shuffle.
#[derive(Debug, Clone)]
pub enum Payload {
    Bytes(Vec<u8>),
    Frame(rframe::DataFrame),
}

impl Payload {
    pub fn approx_bytes(&self) -> usize {
        match self {
            Payload::Bytes(b) => b.len(),
            Payload::Frame(f) => f.approx_bytes(),
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Kv {
    pub key: String,
    pub value: Payload,
}

/// Execution context handed to map/reduce closures: charge virtual compute,
/// emit key/value pairs.
pub struct TaskCtx {
    cost: simnet::CostModel,
    charges: Vec<(&'static str, f64)>,
    emitted: Vec<Kv>,
    records: u64,
    tag: String,
}

impl TaskCtx {
    /// Standalone context for running task payloads outside the engine
    /// (the naive baseline processes files without Hadoop).
    pub fn standalone(cost: simnet::CostModel) -> TaskCtx {
        TaskCtx::new(cost)
    }

    /// Set the split tag (engine-internal; also used by standalone runs).
    pub fn set_tag(&mut self, tag: impl Into<String>) {
        self.tag = tag.into();
    }

    /// Sum of all charges so far.
    pub fn total_charge_s(&self) -> f64 {
        self.total_charge()
    }

    /// Drain emitted pairs (standalone runs handle their own output).
    pub fn take_emitted(&mut self) -> Vec<(String, Payload)> {
        std::mem::take(&mut self.emitted)
            .into_iter()
            .map(|kv| (kv.key, kv.value))
            .collect()
    }

    fn new(cost: simnet::CostModel) -> TaskCtx {
        TaskCtx {
            cost,
            charges: Vec::new(),
            emitted: Vec::new(),
            records: 0,
            tag: String::new(),
        }
    }

    /// Split metadata set by the fetcher (empty when the fetcher sets
    /// none) — how SciDP's R layer learns which slab a task received.
    pub fn input_tag(&self) -> &str {
        &self.tag
    }

    /// The cluster's cost model (to derive charges from byte/pixel counts).
    pub fn cost(&self) -> &simnet::CostModel {
        &self.cost
    }

    /// Charge `secs` of virtual compute under a phase label ("convert",
    /// "plot", "analysis", ...). Phase totals surface in [`TaskReport`].
    pub fn charge(&mut self, phase: &'static str, secs: f64) {
        assert!(secs >= 0.0 && secs.is_finite(), "bad charge {secs}");
        self.charges.push((phase, secs));
    }

    /// Emit a key/value pair into the shuffle (or the task output for
    /// map-only jobs).
    pub fn emit(&mut self, key: impl Into<String>, value: Payload) {
        self.records += 1;
        self.emitted.push(Kv {
            key: key.into(),
            value,
        });
    }

    fn total_charge(&self) -> f64 {
        self.charges.iter().map(|(_, s)| s).sum()
    }
}

/// Map closure: real work over the fetched input.
pub type MapFn = Rc<dyn Fn(TaskInput, &mut TaskCtx) -> Result<(), MrError>>;
/// Reduce closure: one key group at a time.
pub type ReduceFn = Rc<dyn Fn(&str, Vec<Payload>, &mut TaskCtx) -> Result<(), MrError>>;

/// Fault-tolerance policy of one job (Hadoop's
/// `mapreduce.map.maxattempts` family).
#[derive(Clone, Debug)]
pub struct FtConfig {
    /// Attempts per task before the job fails (Hadoop default: 4).
    pub max_task_attempts: usize,
    /// Task failures on one node before it is blacklisted for this job
    /// (0 disables blacklisting). The last usable node is never
    /// blacklisted.
    pub node_blacklist_threshold: usize,
    /// Launch duplicate attempts for straggling maps.
    pub speculative: bool,
    /// A running map is a straggler once its elapsed time exceeds this
    /// multiple of the median committed map duration.
    pub speculative_slowdown: f64,
    /// Fraction of maps that must have committed before speculation is
    /// considered (there is no meaningful median earlier).
    pub speculative_min_completed: f64,
    /// Simulated seconds between failure-detector heartbeat ticks. The
    /// detector only arms itself when the installed fault plan contains
    /// hangs or partitions, so clean runs carry zero detector events.
    pub heartbeat_interval_s: f64,
    /// Consecutive missed heartbeats before a node is *suspected*.
    pub suspect_after_misses: usize,
    /// Consecutive missed heartbeats before a suspected node is *declared
    /// dead*: its slots are withdrawn and its tasks requeued. Unlike a
    /// fault-plan kill this is reversible — heartbeats resuming (a healed
    /// partition) reinstate the node.
    pub dead_after_misses: usize,
    /// Per-attempt hang deadline = `max(hang_deadline_min_s, factor × q75
    /// of committed map durations)`. An attempt still running past its
    /// deadline is declared hung and failed (0 disables deadline checks).
    pub hang_deadline_factor: f64,
    /// Deadline floor while too few maps have committed for a meaningful
    /// duration quantile.
    pub hang_deadline_min_s: f64,
    /// Base of the exponential retry backoff: the k-th retry of a task
    /// waits `min(base·2^(k−1), retry_backoff_max_s)` scaled by a
    /// deterministic jitter in [0.5, 1.5) drawn from the fault-plan seed
    /// (0 requeues immediately, the historical behaviour).
    pub retry_backoff_base_s: f64,
    /// Cap on one backoff delay.
    pub retry_backoff_max_s: f64,
    /// Graceful-degradation floor: if the cluster's usable task slots drop
    /// below this, the job fails fast with [`MrError::QuorumLost`] instead
    /// of limping on at hopeless parallelism (0 disables the floor).
    pub min_live_slots: usize,
}

impl Default for FtConfig {
    fn default() -> Self {
        FtConfig {
            max_task_attempts: 4,
            node_blacklist_threshold: 3,
            speculative: true,
            speculative_slowdown: 2.0,
            speculative_min_completed: 0.5,
            heartbeat_interval_s: 3.0,
            suspect_after_misses: 2,
            dead_after_misses: 4,
            hang_deadline_factor: 3.0,
            hang_deadline_min_s: 45.0,
            retry_backoff_base_s: 0.0,
            retry_backoff_max_s: 30.0,
            min_live_slots: 0,
        }
    }
}

/// Streaming-input pipeline policy: whether map attempts pull their split
/// as chunk-granular pieces through a bounded prefetch window, overlapping
/// in-flight PFS reads with per-piece map compute (§III-A.3's "reads
/// proceed in parallel and overlapped with compute", realized *inside*
/// each task instead of only across tasks).
#[derive(Clone, Debug)]
pub struct StreamConfig {
    /// Use streaming fetches when a split's fetcher supports them
    /// (fetchers without streaming support always take the batch path).
    pub enabled: bool,
    /// Maximum pieces in flight at once (≥ 1; 2 = double buffering).
    pub prefetch_depth: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            enabled: true,
            prefetch_depth: 2,
        }
    }
}

/// A MapReduce job specification.
#[derive(Clone)]
pub struct Job {
    pub name: String,
    pub splits: Vec<InputSplit>,
    pub map_fn: MapFn,
    /// `None` = map-only job (outputs written as `part-m-*`).
    pub reduce_fn: Option<ReduceFn>,
    pub n_reducers: usize,
    /// Directory for part files (HDFS by default, PFS with
    /// `output_to_pfs`).
    pub output_dir: String,
    /// Lustre-connector mode (Fig. 2): map spills go to the PFS over the
    /// network instead of the node-local disk ("diskless Hadoop").
    pub spill_to_pfs: bool,
    /// Lustre-connector mode: part files are written to the PFS.
    pub output_to_pfs: bool,
    /// Retry / blacklist / speculation policy.
    pub ft: FtConfig,
    /// Intra-task read/compute overlap policy.
    pub stream: StreamConfig,
    /// DAG mode: this job is one stage of a DAG — emitted pairs are
    /// hash-partitioned and registered in the sink's shuffle store at
    /// commit instead of being reduced/written here. Mutually exclusive
    /// with `reduce_fn`.
    pub shuffle: Option<crate::dag::ShuffleSink>,
}

impl Job {
    /// A standard HDFS-backed job.
    pub fn new(
        name: impl Into<String>,
        splits: Vec<InputSplit>,
        map_fn: MapFn,
        reduce_fn: Option<ReduceFn>,
        n_reducers: usize,
        output_dir: impl Into<String>,
    ) -> Job {
        Job {
            name: name.into(),
            splits,
            map_fn,
            reduce_fn,
            n_reducers,
            output_dir: output_dir.into(),
            spill_to_pfs: false,
            output_to_pfs: false,
            ft: FtConfig::default(),
            stream: StreamConfig::default(),
            shuffle: None,
        }
    }
}

/// Map or reduce.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskKind {
    Map,
    Reduce,
}

/// Timing of one finished task, decomposed by phase — Figure 7's raw data.
#[derive(Clone, Debug)]
pub struct TaskReport {
    pub kind: TaskKind,
    pub index: usize,
    pub node: NodeId,
    pub start_s: f64,
    pub end_s: f64,
    /// `(phase, virtual seconds)`: "startup", "read", fetch charges,
    /// map charges, "spill" / "shuffle", "sort", "write".
    pub phases: Vec<(&'static str, f64)>,
}

impl TaskReport {
    pub fn duration(&self) -> f64 {
        self.end_s - self.start_s
    }

    /// Total seconds recorded under a phase label.
    pub fn phase(&self, name: &str) -> f64 {
        self.phases
            .iter()
            .filter(|(p, _)| *p == name)
            .map(|(_, s)| s)
            .sum()
    }
}

/// Completed job summary.
#[derive(Clone, Debug)]
pub struct JobResult {
    pub name: String,
    pub start_s: f64,
    pub end_s: f64,
    pub tasks: Vec<TaskReport>,
    pub counters: Counters,
}

impl JobResult {
    pub fn elapsed(&self) -> f64 {
        self.end_s - self.start_s
    }

    /// Fraction of locality-eligible committed maps that ran data-local:
    /// `data_local / (data_local + remote)`. Maps over location-less splits
    /// (`any_locality_maps` — e.g. PFS dummy blocks) are excluded: locality
    /// is not a concept for them and counting them would dilute the ratio.
    /// `None` when no map was locality-eligible.
    pub fn locality_ratio(&self) -> Option<f64> {
        let local = self.counters.get(keys::LOCAL_MAPS);
        let remote = self.counters.get(keys::REMOTE_MAPS);
        let eligible = local + remote;
        if eligible == 0.0 {
            None
        } else {
            Some(local / eligible)
        }
    }

    /// Mean of a phase over all tasks of one kind.
    pub fn mean_phase(&self, kind: TaskKind, phase: &str) -> f64 {
        let v: Vec<f64> = self
            .tasks
            .iter()
            .filter(|t| t.kind == kind)
            .map(|t| t.phase(phase))
            .collect();
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    }

    /// Mean wall duration of tasks of one kind.
    pub fn mean_task_time(&self, kind: TaskKind) -> f64 {
        let v: Vec<f64> = self
            .tasks
            .iter()
            .filter(|t| t.kind == kind)
            .map(TaskReport::duration)
            .collect();
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    }

    /// One-line fault-tolerance summary from the counters: attempts vs
    /// committed tasks, retries, speculation, blacklisting, plus — when they
    /// occurred — lineage recoveries and failure-detector events (hangs,
    /// suspicions, reinstatements, hedged reads). `None` when the run was
    /// clean (every task committed on its first and only attempt and no
    /// detector event fired). `stages_run` alone never triggers a summary:
    /// a multi-stage DAG is not a fault.
    pub fn fault_summary(&self) -> Option<String> {
        let c = &self.counters;
        let attempts = c.get(keys::MAP_ATTEMPTS) + c.get(keys::REDUCE_ATTEMPTS);
        let tasks = c.get(keys::MAP_TASKS) + c.get(keys::REDUCE_TASKS);
        let retries = c.get(keys::TASK_RETRIES);
        let spec = c.get(keys::SPECULATIVE_LAUNCHED);
        let black = c.get(keys::NODE_BLACKLISTED);
        let lineage = c.get(keys::LINEAGE_RECOMPUTES);
        let lost = c.get(keys::SHUFFLE_PARTITIONS_LOST);
        let hangs = c.get(keys::TASKS_HANG_DETECTED);
        let suspected = c.get(keys::NODES_SUSPECTED);
        let reinstated = c.get(keys::NODES_REINSTATED);
        let hedged = c.get(keys::HEDGED_READS);
        if attempts <= tasks
            && retries == 0.0
            && spec == 0.0
            && black == 0.0
            && lineage == 0.0
            && lost == 0.0
            && hangs == 0.0
            && suspected == 0.0
            && hedged == 0.0
        {
            return None;
        }
        let mut s = format!(
            "{attempts:.0} attempts for {tasks:.0} tasks ({retries:.0} retries, \
             {spec:.0} speculative launched / {:.0} won, {black:.0} nodes blacklisted)",
            c.get(keys::SPECULATIVE_WON),
        );
        if lineage > 0.0 || lost > 0.0 {
            s.push_str(&format!(
                "; {lost:.0} shuffle partition(s) lost, {lineage:.0} lineage recompute(s) \
                 over {:.0} stage run(s)",
                c.get(keys::STAGES_RUN),
            ));
        }
        if hangs > 0.0 || suspected > 0.0 || reinstated > 0.0 {
            s.push_str(&format!(
                "; detector: {hangs:.0} hang(s), {suspected:.0} suspected / \
                 {reinstated:.0} reinstated, {:.0} heartbeats missed",
                c.get(keys::HEARTBEATS_MISSED),
            ));
        }
        if hedged > 0.0 {
            s.push_str(&format!(
                "; {hedged:.0} hedged read(s) / {:.0} won",
                c.get(keys::HEDGED_READ_WINS),
            ));
        }
        Some(s)
    }

    /// Streaming-fallback summary from the counters: committed map tasks
    /// that asked for the streaming fetch path but took the batch path,
    /// with per-reason counts. `None` when no task fell back.
    pub fn stream_fallbacks(&self) -> Option<String> {
        let c = &self.counters;
        let total = c.get(keys::STREAM_FALLBACKS);
        if total == 0.0 {
            return None;
        }
        Some(format!(
            "{total:.0} stream fallback(s) ({:.0} unsupported fetcher, {:.0} pushdown)",
            c.get(keys::STREAM_FALLBACK_UNSUPPORTED),
            c.get(keys::STREAM_FALLBACK_PUSHDOWN),
        ))
    }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// One in-flight execution of a task on a node.
#[derive(Clone, Debug)]
struct AttemptInfo {
    kind: TaskKind,
    task: usize,
    node: NodeId,
    start_s: f64,
    /// Scheduled on a node holding the split (locality hit).
    local: bool,
    /// Scheduled on a node holding the split's chunks in the cluster
    /// chunk-cache tier (dynamic cache locality).
    cache_local: bool,
    /// A speculative duplicate of a straggling attempt.
    speculative: bool,
    /// A straggler check event has been queued for this attempt.
    spec_check_scheduled: bool,
}

type AttemptId = u64;

/// Per-task attempt bookkeeping.
#[derive(Clone, Debug, Default)]
struct TaskState {
    /// Attempts launched so far (including the live ones).
    started: usize,
    /// Non-speculative attempts launched so far. The retry budget
    /// (`max_task_attempts`) counts only these: a speculative twin is a
    /// performance bet, not a failure, and must not eat the task's
    /// fault-recovery headroom.
    regular_started: usize,
    /// The task has committed; later attempt callbacks are orphans.
    done: bool,
    /// Attempt ids currently in flight.
    live: Vec<AttemptId>,
    /// A speculative twin has been launched (at most one per task).
    speculated: bool,
}

struct Driver {
    env: MrEnv,
    job: Job,
    start_s: f64,
    pending_maps: VecDeque<usize>,
    pending_reduces: VecDeque<usize>,
    reduce_phase: bool,
    free_slots: Vec<usize>,
    node_dead: Vec<bool>,
    node_blacklisted: Vec<bool>,
    node_failures: Vec<usize>,
    /// Suspicion ladder of the heartbeat failure detector (healthy →
    /// suspected → declared dead). Unlike `node_dead`, declared-dead is
    /// reversible: resumed heartbeats reinstate the node.
    node_suspected: Vec<bool>,
    node_declared_dead: Vec<bool>,
    /// Consecutive heartbeat misses per node.
    hb_misses: Vec<usize>,
    /// Per-attempt hang deadlines armed (hangs, read hangs or partitions
    /// present — a partitioned node's completions are dropped and only a
    /// deadline can recover an attempt stranded by a short partition).
    hang_checks_armed: bool,
    /// Deterministic jitter for retry backoff, seeded from the fault plan.
    backoff_rng: scirng::Rng,
    n_maps: usize,
    maps_done: usize,
    map_states: Vec<TaskState>,
    reduce_states: Vec<TaskState>,
    map_outputs: Vec<Vec<Vec<Kv>>>,
    map_nodes: Vec<NodeId>,
    /// Durations of committed maps (speculation median).
    map_durations: Vec<f64>,
    /// Per-split cluster-cache chunk keys (from
    /// [`crate::input::SplitFetcher::cache_hints`]); all empty when the
    /// cluster cache tier is disabled, so the scheduler pays nothing.
    cache_hints: Vec<Vec<ChunkKey>>,
    /// Cluster-cache registry eviction count when this job started; the
    /// per-job delta lands in [`keys::CLUSTER_CACHE_EVICTIONS`].
    cluster_evictions_start: u64,
    attempts: BTreeMap<AttemptId, AttemptInfo>,
    next_attempt: AttemptId,
    reports: Vec<TaskReport>,
    counters: Counters,
    reduces_done: usize,
    failed: Option<MrError>,
    #[allow(clippy::type_complexity)]
    done_cb: Option<Box<dyn FnOnce(&mut Sim, Result<JobResult, MrError>)>>,
}

type SharedDriver = Rc<RefCell<Driver>>;

impl Driver {
    fn node_usable(&self, n: usize) -> bool {
        !self.node_dead[n] && !self.node_blacklisted[n] && !self.node_declared_dead[n]
    }

    /// Usable task slots across the cluster (capacity, not free slots).
    fn live_slots(&self) -> usize {
        (0..self.node_dead.len())
            .filter(|&n| self.node_usable(n))
            .map(|_| self.env.slots_per_node)
            .sum()
    }

    /// The quorum check: `Some(error)` when the graceful-degradation floor
    /// is breached.
    fn quorum_breach(&self) -> Option<MrError> {
        let floor = self.job.ft.min_live_slots;
        if floor == 0 {
            return None;
        }
        let live = self.live_slots();
        if live < floor {
            Some(MrError::QuorumLost {
                live_slots: live,
                floor,
            })
        } else {
            None
        }
    }

    fn task_state_mut(&mut self, kind: TaskKind, task: usize) -> &mut TaskState {
        match kind {
            TaskKind::Map => &mut self.map_states[task],
            TaskKind::Reduce => &mut self.reduce_states[task],
        }
    }

    /// The job is still accepting task-completion events.
    fn alive(&self) -> bool {
        self.failed.is_none() && self.done_cb.is_some()
    }
}

/// Whether attempt `id` may still affect the job. False once the attempt
/// was orphaned (task committed elsewhere, node died) or the job finished —
/// every continuation of an attempt checks this before touching the driver,
/// which is what stops in-flight callbacks from mutating counters/reports
/// after `fail_job`.
fn attempt_live(d: &SharedDriver, id: AttemptId) -> bool {
    let dd = d.borrow();
    dd.alive() && dd.attempts.contains_key(&id)
}

/// A worker the driver cannot hear from right now: hung, or cut off by an
/// active partition. Completion callbacks from silent nodes are dropped —
/// the report never reaches the driver — and only the failure detector
/// (heartbeats, hang deadlines) can recover the stranded attempt.
fn node_silent(sim: &Sim, node: NodeId) -> bool {
    let now = sim.now().secs();
    sim.faults.node_hung(node.0, now) || sim.faults.partition_isolated(node.0, now)
}

fn stable_hash(s: &str) -> u64 {
    // FNV-1a: deterministic across runs and platforms.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Submit a job; `done` fires (with the result) when the last task output
/// commits. The simulation keeps running — callers can chain stages.
pub fn submit_job(
    cluster: &mut Cluster,
    job: Job,
    done: impl FnOnce(&mut Sim, Result<JobResult, MrError>) + 'static,
) {
    let env = cluster.env();
    submit_job_env(&mut cluster.sim, env, job, done)
}

/// Like [`submit_job`] but usable from inside sim callbacks.
pub fn submit_job_env(
    sim: &mut Sim,
    env: MrEnv,
    job: Job,
    done: impl FnOnce(&mut Sim, Result<JobResult, MrError>) + 'static,
) {
    assert!(job.n_reducers > 0 || job.reduce_fn.is_none());
    assert!(
        job.shuffle.is_none() || job.reduce_fn.is_none(),
        "a shuffle-sink stage is map-only; its grouping runs downstream"
    );
    let n_nodes = env.topo.n_compute();
    let n_maps = job.splits.len();
    let now = sim.now().secs();
    // Nodes the fault plan has already killed start out dead.
    let node_dead: Vec<bool> = (0..n_nodes)
        .map(|n| sim.faults.node_dead(n as u32, now))
        .collect();
    // A node dead before this job started must not keep ghost entries in
    // the cluster cache tier (its memory died with it) — the mid-job kill
    // path does the same through on_node_killed.
    for (n, &dead) in node_dead.iter().enumerate() {
        if dead {
            env.cluster_cache.invalidate_node(NodeId(n as u32));
        }
    }
    let n_reducers = job.n_reducers;
    // Arm the detector machinery only when the plan can actually produce
    // silence: hangs and partitions never complete on their own, so only a
    // heartbeat/deadline can recover from them. Clean (and merely slow or
    // crashy) plans keep the driver's event stream exactly as before.
    let plan = sim.faults.plan();
    let detector_armed = !plan.node_hangs.is_empty() || !plan.partitions.is_empty();
    let hang_checks_armed = detector_armed || !plan.read_hangs.is_empty();
    let backoff_rng = scirng::Rng::seed_from_u64(plan.seed ^ 0x6861_6e67_5f64_6574);
    // Precompute cache-locality hints only when the tier is live: a
    // disabled registry means empty hints, zero scheduler overhead and
    // timing identical to a world without the tier.
    let cache_hints: Vec<Vec<ChunkKey>> = if env.cluster_cache.enabled() {
        job.splits.iter().map(|s| s.fetcher.cache_hints()).collect()
    } else {
        vec![Vec::new(); n_maps]
    };
    let cluster_evictions_start = env.cluster_cache.stats().evictions;
    let d = Rc::new(RefCell::new(Driver {
        free_slots: node_dead
            .iter()
            .map(|&dead| if dead { 0 } else { env.slots_per_node })
            .collect(),
        node_dead,
        node_blacklisted: vec![false; n_nodes],
        node_failures: vec![0; n_nodes],
        node_suspected: vec![false; n_nodes],
        node_declared_dead: vec![false; n_nodes],
        hb_misses: vec![0; n_nodes],
        hang_checks_armed,
        backoff_rng,
        env,
        start_s: now,
        pending_maps: (0..n_maps).collect(),
        pending_reduces: VecDeque::new(),
        reduce_phase: false,
        n_maps,
        maps_done: 0,
        map_states: vec![TaskState::default(); n_maps],
        reduce_states: vec![TaskState::default(); n_reducers],
        map_outputs: vec![Vec::new(); n_maps],
        map_nodes: vec![NodeId(0); n_maps],
        map_durations: Vec::new(),
        cache_hints,
        cluster_evictions_start,
        attempts: BTreeMap::new(),
        next_attempt: 0,
        reports: Vec::new(),
        counters: Counters::new(),
        reduces_done: 0,
        failed: None,
        done_cb: Some(Box::new(done)),
        job,
    }));
    // Watch for planned node kills that are still in the future.
    let kills: Vec<(u32, f64)> = sim
        .faults
        .plan()
        .node_kills
        .iter()
        .filter(|(n, t)| (*n as usize) < n_nodes && t.is_finite() && *t > now)
        .cloned()
        .collect();
    for (node, t) in kills {
        let d2 = d.clone();
        sim.at(simnet::SimTime(t), move |sim| {
            on_node_killed(sim, &d2, node as usize)
        });
    }
    if detector_armed {
        // Count partitions whose onset falls inside the run, then start the
        // heartbeat loop (ticks stop rescheduling once the job finishes).
        let mut onset_now = 0u64;
        let mut future_onsets: Vec<f64> = Vec::new();
        for spec in &sim.faults.plan().partitions {
            if spec.from_s > now {
                future_onsets.push(spec.from_s);
            } else if spec.active(now) {
                onset_now += 1;
            }
        }
        if onset_now > 0 {
            d.borrow_mut()
                .counters
                .add(keys::PARTITIONS_OBSERVED, onset_now as f64);
        }
        for t in future_onsets {
            let d2 = d.clone();
            sim.at(simnet::SimTime(t), move |_sim| {
                let mut dd = d2.borrow_mut();
                if dd.alive() {
                    dd.counters.add(keys::PARTITIONS_OBSERVED, 1.0);
                }
            });
        }
        schedule_heartbeat(sim, &d, 1);
    }
    if n_maps == 0 {
        let d2 = d.clone();
        sim.after(0.0, move |sim| maybe_finish_maps(sim, &d2));
        return;
    }
    try_schedule(sim, &d);
}

/// Convenience: submit, run the world to completion, return the result.
pub fn run_job(cluster: &mut Cluster, job: Job) -> Result<JobResult, MrError> {
    let out: Rc<RefCell<Option<Result<JobResult, MrError>>>> = Rc::new(RefCell::new(None));
    let o = out.clone();
    submit_job(cluster, job, move |_, r| {
        *o.borrow_mut() = Some(r);
    });
    cluster.run();
    let result = out
        .borrow_mut()
        .take()
        .unwrap_or_else(|| Err(MrError::msg("job did not complete before the sim drained")));
    result
}

enum Pick {
    Map {
        node: NodeId,
        task: usize,
        local: bool,
        cache_local: bool,
    },
    Reduce {
        node: NodeId,
        task: usize,
    },
}

enum Sched {
    Run(Pick),
    /// Work is pending but nothing runs and no usable node has a slot —
    /// no event will ever free one, so the job can only fail.
    Stuck(usize),
    Idle,
}

fn try_schedule(sim: &mut Sim, d: &SharedDriver) {
    loop {
        let sched = {
            let mut dd = d.borrow_mut();
            if !dd.alive() {
                return;
            }
            let n_nodes = dd.free_slots.len();
            let mut pick: Option<Pick> = None;
            if !dd.pending_maps.is_empty() {
                // Dynamic cache locality — the top preference tier: a
                // pending split whose chunks are resident in the cluster
                // cache on a free node runs there, skipping its PFS reads
                // entirely. Hints are all-empty when the tier is disabled,
                // so this pass is free for every existing workload.
                'cache: for node in 0..n_nodes {
                    if !dd.node_usable(node) || dd.free_slots.get(node).copied().unwrap_or(0) == 0 {
                        continue;
                    }
                    let nid = NodeId(node as u32);
                    if let Some(pos) = dd.pending_maps.iter().position(|&t| {
                        dd.cache_hints.get(t).is_some_and(|hints| {
                            hints.iter().any(|&k| dd.env.cluster_cache.holds(nid, k))
                        })
                    }) {
                        let Some(task) = dd.pending_maps.remove(pos) else {
                            continue;
                        };
                        let local = dd
                            .job
                            .splits
                            .get(task)
                            .is_some_and(|s| s.locations.contains(&nid));
                        pick = Some(Pick::Map {
                            node: nid,
                            task,
                            local,
                            cache_local: true,
                        });
                        break 'cache;
                    }
                }
                if pick.is_none() {
                    'outer: for node in 0..n_nodes {
                        if !dd.node_usable(node) || dd.free_slots[node] == 0 {
                            continue;
                        }
                        let nid = NodeId(node as u32);
                        // Locality preference: a pending split stored on
                        // this node.
                        if let Some(pos) = dd
                            .pending_maps
                            .iter()
                            .position(|&t| dd.job.splits[t].locations.contains(&nid))
                        {
                            let Some(task) = dd.pending_maps.remove(pos) else {
                                continue;
                            };
                            pick = Some(Pick::Map {
                                node: nid,
                                task,
                                local: true,
                                cache_local: false,
                            });
                            break 'outer;
                        }
                    }
                }
                if pick.is_none() {
                    // Any pending task on the least-loaded usable node with
                    // a free slot — spreads non-local work across the
                    // cluster.
                    let best = (0..n_nodes)
                        .filter(|&n| dd.node_usable(n) && dd.free_slots[n] > 0)
                        .max_by_key(|&n| dd.free_slots[n]);
                    if let Some(node) = best {
                        if let Some(task) = dd.pending_maps.pop_front() {
                            pick = Some(Pick::Map {
                                node: NodeId(node as u32),
                                task,
                                local: false,
                                cache_local: false,
                            });
                        }
                    }
                }
            }
            if pick.is_none() {
                // Reducers honor the same slot limits as maps; prefer the
                // round-robin home node `r % n_nodes` when it has capacity.
                if let Some(r) = dd.pending_reduces.front().copied() {
                    let pref = r % n_nodes;
                    let node = if dd.node_usable(pref) && dd.free_slots[pref] > 0 {
                        Some(pref)
                    } else {
                        (0..n_nodes)
                            .filter(|&n| dd.node_usable(n) && dd.free_slots[n] > 0)
                            .max_by_key(|&n| dd.free_slots[n])
                    };
                    if let Some(node) = node {
                        dd.pending_reduces.pop_front();
                        pick = Some(Pick::Reduce {
                            node: NodeId(node as u32),
                            task: r,
                        });
                    }
                }
            }
            match pick {
                Some(p) => {
                    let node = match &p {
                        Pick::Map { node, .. } | Pick::Reduce { node, .. } => node.0 as usize,
                    };
                    dd.free_slots[node] -= 1;
                    Sched::Run(p)
                }
                None => {
                    let waiting = dd.pending_maps.len() + dd.pending_reduces.len();
                    if waiting > 0 && dd.attempts.is_empty() {
                        Sched::Stuck(waiting)
                    } else {
                        Sched::Idle
                    }
                }
            }
        };
        match sched {
            Sched::Run(Pick::Map {
                node,
                task,
                local,
                cache_local,
            }) => {
                let id =
                    register_attempt(sim, d, TaskKind::Map, task, node, local, cache_local, false);
                run_map_attempt(sim, d, id);
            }
            Sched::Run(Pick::Reduce { node, task }) => {
                let id =
                    register_attempt(sim, d, TaskKind::Reduce, task, node, false, false, false);
                run_reduce_attempt(sim, d, id);
            }
            Sched::Stuck(waiting) => {
                fail_job(
                    sim,
                    d,
                    MrError::msg(format!(
                        "no usable nodes left for {waiting} pending task(s)"
                    )),
                );
                return;
            }
            Sched::Idle => return,
        }
    }
}

/// Register a new attempt of `task` on `node` and charge the attempt-level
/// counters (these are job-global meta counters, not task output). When the
/// hang deadline is armed, a deadline check is queued at the instant the
/// attempt would be declared hung.
#[allow(clippy::too_many_arguments)]
fn register_attempt(
    sim: &mut Sim,
    d: &SharedDriver,
    kind: TaskKind,
    task: usize,
    node: NodeId,
    local: bool,
    cache_local: bool,
    speculative: bool,
) -> AttemptId {
    let (id, deadline) = {
        let mut dd = d.borrow_mut();
        let id = dd.next_attempt;
        dd.next_attempt += 1;
        dd.attempts.insert(
            id,
            AttemptInfo {
                kind,
                task,
                node,
                start_s: sim.now().secs(),
                local,
                cache_local,
                speculative,
                spec_check_scheduled: false,
            },
        );
        {
            let st = dd.task_state_mut(kind, task);
            st.started += 1;
            if speculative {
                st.speculated = true;
            } else {
                st.regular_started += 1;
            }
            st.live.push(id);
        }
        dd.counters.add(
            match kind {
                TaskKind::Map => keys::MAP_ATTEMPTS,
                TaskKind::Reduce => keys::REDUCE_ATTEMPTS,
            },
            1.0,
        );
        if speculative {
            dd.counters.add(keys::SPECULATIVE_LAUNCHED, 1.0);
        }
        let factor = dd.job.ft.hang_deadline_factor;
        let deadline = if dd.hang_checks_armed && factor > 0.0 {
            // Adaptive deadline: a generous multiple of the q75 committed
            // map duration, floored while too few maps have finished.
            Some(
                dd.job
                    .ft
                    .hang_deadline_min_s
                    .max(factor * quantile(&dd.map_durations, 0.75)),
            )
        } else {
            None
        };
        (id, deadline)
    };
    if let Some(deadline) = deadline {
        let d2 = d.clone();
        sim.after(deadline, move |sim| {
            hang_deadline_check(sim, &d2, id, deadline)
        });
    }
    id
}

/// An attempt failed (fetch error, user code error). Release the slot,
/// update blacklist accounting, and requeue the task unless its attempts
/// are exhausted — in which case the job fails with the attempt's error,
/// unchanged.
fn attempt_failed(sim: &mut Sim, d: &SharedDriver, id: AttemptId, err: MrError) {
    attempt_failed_inner(sim, d, id, err, true)
}

/// `count_node_failure`: whether the failure counts against the node's
/// blacklist tally. The hang detector passes `false` for attempts stranded
/// by a hung or partitioned node — the *fault* silenced them, and
/// blacklisting would make a healed partition permanent.
fn attempt_failed_inner(
    sim: &mut Sim,
    d: &SharedDriver,
    id: AttemptId,
    err: MrError,
    count_node_failure: bool,
) {
    enum Next {
        Fail(MrError),
        Requeue {
            delay: f64,
            kind: TaskKind,
            task: usize,
        },
        Schedule,
    }
    let next = {
        let mut dd = d.borrow_mut();
        if !dd.alive() {
            return;
        }
        let Some(info) = dd.attempts.remove(&id) else {
            return; // orphaned twin failing after the task committed
        };
        let node = info.node.0 as usize;
        let (task_done, others_running, regular_started) = {
            let st = dd.task_state_mut(info.kind, info.task);
            st.live.retain(|&x| x != id);
            (st.done, !st.live.is_empty(), st.regular_started)
        };
        let mut breach: Option<MrError> = None;
        if !dd.node_dead[node] && !dd.node_declared_dead[node] {
            dd.free_slots[node] += 1;
            if count_node_failure {
                dd.node_failures[node] += 1;
                let th = dd.job.ft.node_blacklist_threshold;
                let usable = (0..dd.node_dead.len())
                    .filter(|&n| dd.node_usable(n))
                    .count();
                if th > 0
                    && !dd.node_blacklisted[node]
                    && dd.node_failures[node] >= th
                    && usable > 1
                {
                    dd.node_blacklisted[node] = true;
                    dd.counters.add(keys::NODE_BLACKLISTED, 1.0);
                    breach = dd.quorum_breach();
                }
            }
        }
        if let Some(e) = breach {
            Next::Fail(e)
        } else if task_done || others_running {
            // A speculative twin died while its sibling lives on (or after
            // the task already committed): nothing to requeue.
            Next::Schedule
        } else if regular_started >= dd.job.ft.max_task_attempts.max(1) {
            Next::Fail(err)
        } else {
            dd.counters.add(keys::TASK_RETRIES, 1.0);
            // Exponential backoff with deterministic jitter: the k-th retry
            // of this task waits before requeueing, easing pressure on a
            // struggling cluster. Off (base = 0) requeues immediately.
            let base = dd.job.ft.retry_backoff_base_s;
            let retries = regular_started.saturating_sub(1).max(1) as u32;
            let delay = if base > 0.0 {
                let raw = base * 2f64.powi(retries as i32 - 1);
                let jitter = 0.5 + dd.backoff_rng.f64();
                raw.min(dd.job.ft.retry_backoff_max_s.max(base)) * jitter
            } else {
                0.0
            };
            if delay <= 0.0 {
                match info.kind {
                    TaskKind::Map => dd.pending_maps.push_back(info.task),
                    TaskKind::Reduce => dd.pending_reduces.push_back(info.task),
                }
            }
            Next::Requeue {
                delay,
                kind: info.kind,
                task: info.task,
            }
        }
    };
    match next {
        Next::Fail(e) => fail_job(sim, d, e),
        Next::Schedule => try_schedule(sim, d),
        Next::Requeue { delay, kind, task } if delay > 0.0 => {
            // The task stays out of the pending queue until the backoff
            // expires — a held-back task cannot trip the Stuck detector
            // because its requeue event is always in flight.
            let d2 = d.clone();
            sim.after(delay, move |sim| {
                {
                    let mut dd = d2.borrow_mut();
                    if !dd.alive() {
                        return;
                    }
                    match kind {
                        TaskKind::Map => dd.pending_maps.push_back(task),
                        TaskKind::Reduce => dd.pending_reduces.push_back(task),
                    }
                }
                try_schedule(sim, &d2);
            });
        }
        Next::Requeue { .. } => try_schedule(sim, d),
    }
}

/// A node died (fault plan): drop its slots, orphan its live attempts and
/// requeue their tasks on the survivors.
fn on_node_killed(sim: &mut Sim, d: &SharedDriver, node: usize) {
    let exhausted = {
        let mut dd = d.borrow_mut();
        if !dd.alive() || dd.node_dead[node] {
            return;
        }
        dd.node_dead[node] = true;
        dd.free_slots[node] = 0;
        // The node's cached chunks died with its memory — invalidate them
        // exactly like its shuffle outputs, so no later stage is steered
        // to (or served from) a ghost replica.
        dd.env.cluster_cache.invalidate_node(NodeId(node as u32));
        let victims: Vec<AttemptId> = dd
            .attempts
            .iter()
            .filter(|(_, i)| i.node.0 as usize == node)
            .map(|(&id, _)| id)
            .collect();
        let mut exhausted: Option<MrError> = dd.quorum_breach();
        for id in victims {
            let Some(info) = dd.attempts.remove(&id) else {
                continue;
            };
            let (task_done, others_running, regular_started) = {
                let st = dd.task_state_mut(info.kind, info.task);
                st.live.retain(|&x| x != id);
                (st.done, !st.live.is_empty(), st.regular_started)
            };
            if task_done || others_running {
                continue;
            }
            if regular_started >= dd.job.ft.max_task_attempts.max(1) {
                exhausted.get_or_insert(MrError::msg(format!(
                    "{:?} task {} lost to death of node {} after {} attempts",
                    info.kind, info.task, node, regular_started
                )));
            } else {
                dd.counters.add(keys::TASK_RETRIES, 1.0);
                match info.kind {
                    TaskKind::Map => dd.pending_maps.push_back(info.task),
                    TaskKind::Reduce => dd.pending_reduces.push_back(info.task),
                }
            }
        }
        exhausted
    };
    match exhausted {
        Some(e) => fail_job(sim, d, e),
        None => try_schedule(sim, d),
    }
}

/// Queue heartbeat tick `k` of the failure detector at
/// `start + k·interval` simulated seconds. Each tick reschedules the next
/// while the job is alive, so the loop dies with the job and never keeps
/// the simulator spinning.
fn schedule_heartbeat(sim: &mut Sim, d: &SharedDriver, tick: u64) {
    let (start, interval) = {
        let dd = d.borrow();
        (dd.start_s, dd.job.ft.heartbeat_interval_s)
    };
    if interval <= 0.0 || !interval.is_finite() {
        return;
    }
    let d2 = d.clone();
    sim.at(
        simnet::SimTime(start + tick as f64 * interval),
        move |sim| heartbeat_tick(sim, &d2, tick),
    );
}

/// One detector tick: a node inside an active partition or past its hang
/// onset cannot deliver a heartbeat; consecutive misses walk it up the
/// suspicion ladder (suspected → declared dead), and a resumed heartbeat
/// (healed partition) walks it back down — reinstating its slots instead of
/// blacklisting it for good.
fn heartbeat_tick(sim: &mut Sim, d: &SharedDriver, tick: u64) {
    let (declare, reinstated) = {
        let mut dd = d.borrow_mut();
        if !dd.alive() {
            return; // job finished: stop ticking
        }
        let now = sim.now().secs();
        let n_nodes = dd.node_dead.len();
        let suspect_after = dd.job.ft.suspect_after_misses.max(1);
        let dead_after = dd.job.ft.dead_after_misses.max(suspect_after);
        let mut declare: Vec<usize> = Vec::new();
        let mut reinstated = false;
        for n in 0..n_nodes {
            if dd.node_dead[n] || dd.node_blacklisted[n] {
                continue; // permanently out of the detector's scope
            }
            let silent =
                sim.faults.node_hung(n as u32, now) || sim.faults.partition_isolated(n as u32, now);
            if silent {
                dd.hb_misses[n] += 1;
                dd.counters.add(keys::HEARTBEATS_MISSED, 1.0);
                if dd.hb_misses[n] >= suspect_after && !dd.node_suspected[n] {
                    dd.node_suspected[n] = true;
                    dd.counters.add(keys::NODES_SUSPECTED, 1.0);
                }
                if dd.hb_misses[n] >= dead_after && !dd.node_declared_dead[n] {
                    declare.push(n);
                }
            } else if dd.hb_misses[n] > 0 {
                // Heartbeats resumed: clear suspicion and give the node its
                // slots back if it had been declared dead.
                dd.hb_misses[n] = 0;
                if dd.node_suspected[n] || dd.node_declared_dead[n] {
                    dd.counters.add(keys::NODES_REINSTATED, 1.0);
                }
                dd.node_suspected[n] = false;
                if dd.node_declared_dead[n] {
                    dd.node_declared_dead[n] = false;
                    dd.free_slots[n] = dd.env.slots_per_node;
                    reinstated = true;
                }
            }
        }
        (declare, reinstated)
    };
    for n in declare {
        on_node_declared_dead(sim, d, n);
    }
    if reinstated {
        try_schedule(sim, d);
    }
    if d.borrow().alive() {
        schedule_heartbeat(sim, d, tick + 1);
    }
}

/// The detector declared `node` dead: withdraw its slots, orphan its live
/// attempts and requeue their tasks — exactly like a fault-plan kill except
/// the state is reversible (a later heartbeat reinstates the node) and the
/// node's failure tally is untouched, so a healed partition never leaves
/// the node blacklisted.
fn on_node_declared_dead(sim: &mut Sim, d: &SharedDriver, node: usize) {
    let exhausted = {
        let mut dd = d.borrow_mut();
        if !dd.alive() || dd.node_dead[node] || dd.node_declared_dead[node] {
            return;
        }
        dd.node_declared_dead[node] = true;
        dd.free_slots[node] = 0;
        let victims: Vec<AttemptId> = dd
            .attempts
            .iter()
            .filter(|(_, i)| i.node.0 as usize == node)
            .map(|(&id, _)| id)
            .collect();
        let mut exhausted: Option<MrError> = dd.quorum_breach();
        for id in victims {
            let Some(info) = dd.attempts.remove(&id) else {
                continue;
            };
            let (task_done, others_running, regular_started) = {
                let st = dd.task_state_mut(info.kind, info.task);
                st.live.retain(|&x| x != id);
                (st.done, !st.live.is_empty(), st.regular_started)
            };
            if task_done || others_running {
                continue;
            }
            if regular_started >= dd.job.ft.max_task_attempts.max(1) {
                exhausted.get_or_insert(MrError::msg(format!(
                    "{:?} task {} lost to declared-dead node {} after {} attempts",
                    info.kind, info.task, node, regular_started
                )));
            } else {
                dd.counters.add(keys::TASK_RETRIES, 1.0);
                match info.kind {
                    TaskKind::Map => dd.pending_maps.push_back(info.task),
                    TaskKind::Reduce => dd.pending_reduces.push_back(info.task),
                }
            }
        }
        exhausted
    };
    match exhausted {
        Some(e) => fail_job(sim, d, e),
        None => try_schedule(sim, d),
    }
}

/// The per-attempt deadline fired: the attempt is hung if it is still in
/// flight. Hangs on a silenced node (hung or partitioned) are charged to
/// the fault, not the node — its failure tally stays untouched so a healed
/// partition reinstates a clean node; a hung *read* on a healthy node
/// counts as an ordinary task failure.
fn hang_deadline_check(sim: &mut Sim, d: &SharedDriver, id: AttemptId, deadline: f64) {
    let verdict = {
        let mut dd = d.borrow_mut();
        if !dd.alive() {
            return;
        }
        let Some(info) = dd.attempts.get(&id) else {
            return; // finished, failed or orphaned before the deadline
        };
        let (kind, task, node) = (info.kind, info.task, info.node.0 as usize);
        let now = sim.now().secs();
        let node_silent = sim.faults.node_hung(node as u32, now)
            || sim.faults.partition_isolated(node as u32, now);
        dd.counters.add(keys::TASKS_HANG_DETECTED, 1.0);
        (kind, task, node, node_silent)
    };
    let (kind, task, node, node_silent) = verdict;
    attempt_failed_inner(
        sim,
        d,
        id,
        MrError::msg(format!(
            "{kind:?} task {task} hung on node {node}: no completion within \
             its {deadline:.1}s deadline"
        )),
        !node_silent,
    );
}

/// Sorted `q`-quantile of `v` (nearest-rank); 0 on empty input.
fn quantile(v: &[f64], q: f64) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    let mut s = v.to_vec();
    s.sort_by(f64::total_cmp);
    let idx = ((s.len() as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize;
    s[idx.min(s.len() - 1)]
}

fn median(v: &[f64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    let mut s = v.to_vec();
    // total_cmp: a NaN duration (however degenerate the timing) must not
    // panic the driver mid-job; NaNs sort to the end and the median of the
    // finite majority still steers speculation sensibly.
    s.sort_by(f64::total_cmp);
    let n = s.len();
    if n % 2 == 1 {
        s[n / 2]
    } else {
        0.5 * (s[n / 2 - 1] + s[n / 2])
    }
}

/// Called at every map commit: queue one straggler check per still-running
/// map attempt at the instant it would cross the slowdown threshold.
fn schedule_speculation_checks(sim: &mut Sim, d: &SharedDriver) {
    let checks: Vec<(AttemptId, f64)> = {
        let mut dd = d.borrow_mut();
        if !dd.job.ft.speculative || !dd.alive() {
            return;
        }
        let enough = dd.maps_done as f64 >= dd.job.ft.speculative_min_completed * dd.n_maps as f64;
        if !enough {
            return;
        }
        let med = median(&dd.map_durations);
        if med <= 0.0 {
            return;
        }
        let factor = dd.job.ft.speculative_slowdown.max(1.0);
        let ids: Vec<AttemptId> = dd
            .attempts
            .iter()
            .filter(|(_, i)| i.kind == TaskKind::Map && !i.spec_check_scheduled)
            .map(|(&id, _)| id)
            .collect();
        let mut out = Vec::new();
        for id in ids {
            let (task, start_s) = match dd.attempts.get(&id) {
                Some(i) => (i.task, i.start_s),
                None => continue,
            };
            if dd.map_states[task].done || dd.map_states[task].speculated {
                continue;
            }
            if let Some(i) = dd.attempts.get_mut(&id) {
                i.spec_check_scheduled = true;
            }
            out.push((id, start_s + factor * med));
        }
        out
    };
    let now = sim.now().secs();
    for (id, t) in checks {
        let d2 = d.clone();
        sim.at(simnet::SimTime(t.max(now)), move |sim| {
            maybe_speculate(sim, &d2, id)
        });
    }
}

/// The straggler check: if the attempt is still running past its threshold
/// and a different usable node has a free slot, launch a duplicate attempt.
/// First commit wins; the loser is orphaned.
fn maybe_speculate(sim: &mut Sim, d: &SharedDriver, id: AttemptId) {
    let launch = {
        let mut dd = d.borrow_mut();
        if !dd.alive() {
            return;
        }
        let Some(info) = dd.attempts.get(&id) else {
            return; // finished or failed before its check fired
        };
        let (task, node) = (info.task, info.node.0 as usize);
        let st = &dd.map_states[task];
        // Note: the attempt budget is deliberately not consulted — a
        // speculative launch is exempt from `max_task_attempts` (it counts
        // neither against the budget nor as a retry), so speculating never
        // costs the task its recovery headroom.
        if st.done || st.speculated {
            return;
        }
        let n_nodes = dd.free_slots.len();
        let cand = (0..n_nodes)
            .filter(|&n| n != node && dd.node_usable(n) && dd.free_slots[n] > 0)
            .max_by_key(|&n| dd.free_slots[n]);
        let Some(c) = cand else {
            return; // no spare capacity elsewhere; let the original run
        };
        dd.free_slots[c] -= 1;
        let nid = NodeId(c as u32);
        let local = dd.job.splits[task].locations.contains(&nid);
        let cache_local = dd
            .cache_hints
            .get(task)
            .is_some_and(|hints| hints.iter().any(|&k| dd.env.cluster_cache.holds(nid, k)));
        (task, nid, local, cache_local)
    };
    let (task, node, local, cache_local) = launch;
    let id2 = register_attempt(sim, d, TaskKind::Map, task, node, local, cache_local, true);
    run_map_attempt(sim, d, id2);
}

/// Run one map attempt. All task-level counters land in an attempt-local
/// [`Counters`] merged only at commit, so failed/orphaned attempts never
/// distort the job totals.
fn run_map_attempt(sim: &mut Sim, d: &SharedDriver, id: AttemptId) {
    let (env, startup, fetcher, node, split_len, stream_cfg) = {
        let dd = d.borrow();
        let info = &dd.attempts[&id];
        (
            dd.env.clone(),
            sim.cost.task_startup_s,
            dd.job.splits[info.task].fetcher.clone(),
            info.node,
            dd.job.splits[info.task].length as f64,
            dd.job.stream.clone(),
        )
    };
    let mut acnt = Counters::new();
    acnt.add(keys::INPUT_BYTES, split_len);
    let d2 = d.clone();
    sim.after(startup, move |sim| {
        if !attempt_live(&d2, id) {
            return;
        }
        let fetch_start = sim.now().secs();
        if stream_cfg.enabled {
            match fetcher.open_stream(&env, sim, node) {
                Ok(stream) => {
                    run_stream_attempt(
                        sim,
                        &d2,
                        id,
                        &env,
                        stream.into(),
                        node,
                        startup,
                        fetch_start,
                        stream_cfg.prefetch_depth.max(1),
                        acnt,
                    );
                    return;
                }
                Err(fb) => {
                    // Attempt-local, merged only at commit: exactly one
                    // fallback (with its reason) per committed task.
                    acnt.add(keys::STREAM_FALLBACKS, 1.0);
                    acnt.add(fb.counter_key(), 1.0);
                }
            }
        }
        let d3 = d2.clone();
        fetcher.fetch(
            &env,
            sim,
            node,
            Box::new(move |sim, fr| {
                if !attempt_live(&d3, id) {
                    return;
                }
                let fr = match fr {
                    Ok(fr) => fr,
                    Err(e) => {
                        attempt_failed(sim, &d3, id, e);
                        return;
                    }
                };
                let read_s = sim.now().secs() - fetch_start;
                // Real map execution.
                let (map_fn, penalty) = {
                    let dd = d3.borrow();
                    let p = if dd.env.slots_per_node > 1 {
                        sim.cost.parallel_compute_penalty
                    } else {
                        1.0
                    };
                    (dd.job.map_fn.clone(), p)
                };
                let mut ctx = TaskCtx::new(sim.cost.clone());
                ctx.tag = fr.tag;
                for (phase, secs) in &fr.charges {
                    ctx.charge(phase, *secs);
                }
                for (key, v) in &fr.counters {
                    acnt.add(key, *v);
                }
                if let Err(e) = (map_fn)(fr.input, &mut ctx) {
                    attempt_failed(sim, &d3, id, e);
                    return;
                }
                // A fault-plan slowdown stretches this attempt's compute —
                // the straggler model speculation reacts to.
                let factor = penalty * sim.faults.slow_factor(node.0);
                let compute = ctx.total_charge() * factor;
                let mut phases = vec![("startup", startup), ("read", read_s)];
                for (p, s) in &ctx.charges {
                    phases.push((p, s * factor));
                }
                let records = ctx.records;
                let emitted = ctx.emitted;
                let d4 = d3.clone();
                sim.after(compute, move |sim| {
                    if !attempt_live(&d4, id) || node_silent(sim, node) {
                        return;
                    }
                    finish_map_compute(sim, &d4, id, phases, emitted, records, acnt)
                });
            }),
        );
    });
}

/// Bookkeeping of one streaming map attempt: pieces are issued in index
/// order through a window of at most `prefetch_depth` in-flight reads, and
/// each arrival is timestamped so the pipelined-compute timeline can be
/// derived once the full split is resident.
struct StreamState {
    next_issue: usize,
    in_flight: usize,
    arrived: usize,
    /// Absolute arrival time of each piece (valid once arrived).
    arrivals: Vec<f64>,
    /// Unscaled compute seconds each piece's arrival implies.
    piece_charge: Vec<f64>,
    /// Weight of each piece for apportioning split-wide map compute.
    piece_bytes: Vec<f64>,
    /// Per-piece `(phase, secs)` charges, accumulated for the task report.
    charges: Vec<(&'static str, f64)>,
    /// Attempt-local counters (input bytes + per-piece deltas).
    acnt: Counters,
}

/// Streaming fetch of one map attempt (the intra-task read/compute overlap
/// pipeline). Reads run for real through the simulated PFS with at most
/// `depth` pieces in flight; the map function runs once on the assembled
/// input (so output stays byte-identical to the batch path), and the
/// attempt's duration is the pipelined timeline
/// `f_i = max(f_{i-1}, a_i) + c_i` — compute of piece `i` starts as soon as
/// both the piece has arrived (`a_i`) and the previous piece's compute has
/// finished, i.e. `max(read, compute)`-shaped instead of `read + compute`.
#[allow(clippy::too_many_arguments)]
fn run_stream_attempt(
    sim: &mut Sim,
    d: &SharedDriver,
    id: AttemptId,
    env: &MrEnv,
    stream: Rc<dyn PieceStream>,
    node: NodeId,
    startup: f64,
    fetch_start: f64,
    depth: usize,
    acnt: Counters,
) {
    let n = stream.n_pieces();
    let st = Rc::new(RefCell::new(StreamState {
        next_issue: 0,
        in_flight: 0,
        arrived: 0,
        arrivals: vec![0.0; n],
        piece_charge: vec![0.0; n],
        piece_bytes: vec![0.0; n],
        charges: Vec::new(),
        acnt,
    }));
    if n == 0 {
        // Nothing to transfer (e.g. every chunk was cached): straight to map.
        stream_map(sim, d, id, stream, st, node, startup, fetch_start);
        return;
    }
    issue_pieces(
        sim,
        d,
        id,
        env,
        &stream,
        &st,
        node,
        startup,
        fetch_start,
        depth,
    );
}

/// Top up the prefetch window: issue pieces in index order until `depth`
/// are in flight or none remain. Each completion refills the window (or,
/// on the last arrival, runs the map).
#[allow(clippy::too_many_arguments)]
fn issue_pieces(
    sim: &mut Sim,
    d: &SharedDriver,
    id: AttemptId,
    env: &MrEnv,
    stream: &Rc<dyn PieceStream>,
    st: &Rc<RefCell<StreamState>>,
    node: NodeId,
    startup: f64,
    fetch_start: f64,
    depth: usize,
) {
    loop {
        let idx = {
            let mut s = st.borrow_mut();
            if s.next_issue >= s.arrivals.len() || s.in_flight >= depth {
                return;
            }
            let i = s.next_issue;
            s.next_issue += 1;
            s.in_flight += 1;
            i
        };
        let (d2, env2, stream2, st2) = (d.clone(), env.clone(), stream.clone(), st.clone());
        stream.fetch_piece(
            env,
            sim,
            node,
            idx,
            Box::new(move |sim, res| {
                if !attempt_live(&d2, id) {
                    return; // attempt failed or was orphaned mid-stream
                }
                let piece = match res {
                    Ok(p) => p,
                    Err(e) => {
                        // Kills the attempt exactly like a batch fetch
                        // error; siblings still in flight fall silent on
                        // the `attempt_live` guard above.
                        attempt_failed(sim, &d2, id, e);
                        return;
                    }
                };
                let all = {
                    let mut s = st2.borrow_mut();
                    s.in_flight -= 1;
                    s.arrived += 1;
                    s.arrivals[idx] = sim.now().secs();
                    s.piece_bytes[idx] = piece.bytes as f64;
                    s.piece_charge[idx] = piece.charges.iter().map(|(_, c)| c).sum();
                    s.charges.extend(piece.charges);
                    for (k, v) in piece.counters {
                        s.acnt.add(k, v);
                    }
                    s.arrived == s.arrivals.len()
                };
                if all {
                    stream_map(sim, &d2, id, stream2, st2, node, startup, fetch_start);
                } else {
                    issue_pieces(
                        sim,
                        &d2,
                        id,
                        &env2,
                        &stream2,
                        &st2,
                        node,
                        startup,
                        fetch_start,
                        depth,
                    );
                }
            }),
        );
    }
}

/// All pieces are resident: assemble the split, run the map function, and
/// schedule the attempt's end at the pipelined finish time. The "read"
/// phase records only the *stalled* read seconds (time the compute
/// pipeline actually waited on bytes); `overlap_saved_s` records how much
/// shorter the pipelined timeline is than read-then-compute.
#[allow(clippy::too_many_arguments)]
fn stream_map(
    sim: &mut Sim,
    d: &SharedDriver,
    id: AttemptId,
    stream: Rc<dyn PieceStream>,
    st: Rc<RefCell<StreamState>>,
    node: NodeId,
    startup: f64,
    fetch_start: f64,
) {
    let fr = match stream.finish() {
        Ok(fr) => fr,
        Err(e) => {
            attempt_failed(sim, d, id, e);
            return;
        }
    };
    let (map_fn, penalty) = {
        let dd = d.borrow();
        let p = if dd.env.slots_per_node > 1 {
            sim.cost.parallel_compute_penalty
        } else {
            1.0
        };
        (dd.job.map_fn.clone(), p)
    };
    let mut ctx = TaskCtx::new(sim.cost.clone());
    ctx.tag = fr.tag;
    for (phase, secs) in &fr.charges {
        ctx.charge(phase, *secs);
    }
    for (key, v) in &fr.counters {
        st.borrow_mut().acnt.add(key, *v);
    }
    if let Err(e) = (map_fn)(fr.input, &mut ctx) {
        attempt_failed(sim, d, id, e);
        return;
    }
    let factor = penalty * sim.faults.slow_factor(node.0);
    let (arrivals, piece_charge, piece_bytes, piece_phases, mut acnt) = {
        let mut s = st.borrow_mut();
        (
            std::mem::take(&mut s.arrivals),
            std::mem::take(&mut s.piece_charge),
            std::mem::take(&mut s.piece_bytes),
            std::mem::take(&mut s.charges),
            std::mem::take(&mut s.acnt),
        )
    };
    let now = sim.now().secs();
    let n = arrivals.len();
    // Compute of piece `i` = its own charge plus its byte-weighted share of
    // the split-wide charges (map + finish-level fetch charges).
    let tail = ctx.total_charge();
    let total_bytes: f64 = piece_bytes.iter().sum();
    let mut stall = 0.0;
    let finish_t = if n == 0 {
        now + tail * factor
    } else {
        let mut f = fetch_start;
        let mut compute_total = 0.0;
        let mut prefetched = 0.0;
        for (i, (&a, (&pb, &pc))) in arrivals
            .iter()
            .zip(piece_bytes.iter().zip(piece_charge.iter()))
            .enumerate()
        {
            let w = if total_bytes > 0.0 {
                pb / total_bytes
            } else {
                1.0 / n as f64
            };
            let c = (pc + tail * w) * factor;
            compute_total += c;
            if a <= f && i > 0 {
                prefetched += 1.0; // read fully hidden behind compute
            } else {
                stall += a - f;
            }
            f = f.max(a) + c;
        }
        // `f == fetch_start + stall + compute_total` by construction, and
        // `f >= now` since every piece's compute follows its arrival. The
        // saving is vs. the batch shape `now + compute_total`.
        let saved = (now + compute_total - f).max(0.0);
        if saved > 0.0 {
            acnt.add(keys::OVERLAP_SAVED_S, saved);
        }
        if prefetched > 0.0 {
            acnt.add(keys::PIECES_PREFETCHED, prefetched);
        }
        f
    };
    let mut phases = vec![("startup", startup), ("read", stall)];
    for (p, s) in &piece_phases {
        phases.push((p, s * factor));
    }
    for (p, s) in &ctx.charges {
        phases.push((p, s * factor));
    }
    let records = ctx.records;
    let emitted = ctx.emitted;
    let d4 = d.clone();
    sim.after((finish_t - now).max(0.0), move |sim| {
        if !attempt_live(&d4, id) || node_silent(sim, node) {
            return;
        }
        finish_map_compute(sim, &d4, id, phases, emitted, records, acnt)
    });
}

/// Final step of a task-output write: an orphaned attempt deletes its own
/// temp file; a live one renames it into place and charges the write
/// bytes to the correct store (PFS vs HDFS). Returns whether the attempt
/// committed its file.
fn promote_task_output(
    d: &SharedDriver,
    id: AttemptId,
    tmp: &str,
    final_path: &str,
    output_to_pfs: bool,
    len: f64,
    acnt: &mut Counters,
) -> bool {
    let env = d.borrow().env.clone();
    if !attempt_live(d, id) {
        // The sim has no GC — the loser of a speculative race (or a write
        // that outlived a failed job) removes its own temp file.
        if output_to_pfs {
            env.pfs.borrow_mut().delete(tmp);
        } else {
            let mut h = env.hdfs.borrow_mut();
            if let Ok(ids) = h.namenode.delete(tmp) {
                h.datanodes.reclaim(&ids);
            }
        }
        return false;
    }
    if output_to_pfs {
        let mut p = env.pfs.borrow_mut();
        p.delete(final_path);
        p.rename(tmp, final_path);
    } else {
        let mut h = env.hdfs.borrow_mut();
        if let Ok(ids) = h.namenode.delete(final_path) {
            h.datanodes.reclaim(&ids);
        }
        let _ = h.namenode.rename(tmp, final_path);
    }
    acnt.add(
        if output_to_pfs {
            keys::PFS_WRITE_BYTES
        } else {
            keys::HDFS_WRITE_BYTES
        },
        len,
    );
    true
}

/// Commit one finished task attempt: first commit wins, later siblings are
/// orphaned; counters, locality stats and the task report are recorded
/// exactly once per task here.
fn commit_task(
    sim: &mut Sim,
    d: &SharedDriver,
    id: AttemptId,
    phases: Vec<(&'static str, f64)>,
    map_parts: Option<Vec<Vec<Kv>>>,
    acnt: &Counters,
) {
    let committed = {
        let mut dd = d.borrow_mut();
        if !dd.alive() {
            return;
        }
        let Some(info) = dd.attempts.remove(&id) else {
            return; // lost the speculative race
        };
        let (kind, task) = (info.kind, info.task);
        let others = {
            let st = dd.task_state_mut(kind, task);
            st.done = true;
            st.live.retain(|&x| x != id);
            std::mem::take(&mut st.live)
        };
        // Orphan the losing twins: their continuations see `attempt_live`
        // false and fall silent; release their slots now.
        for o in others {
            if let Some(oi) = dd.attempts.remove(&o) {
                let n = oi.node.0 as usize;
                if !dd.node_dead[n] && !dd.node_declared_dead[n] {
                    dd.free_slots[n] += 1;
                }
            }
        }
        dd.counters.merge(acnt);
        let end_s = sim.now().secs();
        match kind {
            TaskKind::Map => {
                dd.map_nodes[task] = info.node;
                if let Some(parts) = map_parts {
                    match dd.job.shuffle.clone() {
                        // DAG stage: registration happens here, at commit,
                        // so first-commit-wins also means register-once —
                        // an orphaned twin never reaches this point. Job
                        // task indices are remapped to stage partition ids
                        // (recompute jobs cover a sparse subset).
                        Some(sink) => {
                            let pid = sink.task_ids.get(task).copied().unwrap_or(task);
                            sink.store.borrow_mut().register(
                                sink.shuffle_id,
                                pid,
                                info.node,
                                parts,
                            );
                        }
                        None => dd.map_outputs[task] = parts,
                    }
                }
                dd.counters.add(keys::MAP_TASKS, 1.0);
                let has_locations = !dd.job.splits[task].locations.is_empty();
                dd.counters.add(
                    if !has_locations {
                        keys::ANY_MAPS
                    } else if info.local {
                        keys::LOCAL_MAPS
                    } else {
                        keys::REMOTE_MAPS
                    },
                    1.0,
                );
                if info.cache_local {
                    dd.counters.add(keys::CACHE_LOCALITY_MAPS, 1.0);
                }
                if info.speculative {
                    dd.counters.add(keys::SPECULATIVE_WON, 1.0);
                }
                dd.map_durations.push(end_s - info.start_s);
                dd.maps_done += 1;
            }
            TaskKind::Reduce => {
                dd.counters.add(keys::REDUCE_TASKS, 1.0);
                dd.reduces_done += 1;
            }
        }
        dd.reports.push(TaskReport {
            kind,
            index: task,
            node: info.node,
            start_s: info.start_s,
            end_s,
            phases,
        });
        let n = info.node.0 as usize;
        if !dd.node_dead[n] && !dd.node_declared_dead[n] {
            dd.free_slots[n] += 1;
        }
        kind
    };
    match committed {
        TaskKind::Map => {
            schedule_speculation_checks(sim, d);
            try_schedule(sim, d);
            maybe_finish_maps(sim, d);
        }
        TaskKind::Reduce => {
            try_schedule(sim, d);
            let all = {
                let dd = d.borrow();
                dd.reduces_done == dd.job.n_reducers
            };
            if all {
                complete(sim, d);
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn finish_map_compute(
    sim: &mut Sim,
    d: &SharedDriver,
    id: AttemptId,
    phases: Vec<(&'static str, f64)>,
    emitted: Vec<Kv>,
    records: u64,
    mut acnt: Counters,
) {
    let out_bytes: usize = emitted
        .iter()
        .map(|kv| kv.key.len() + kv.value.approx_bytes())
        .sum();
    acnt.add(keys::MAP_OUTPUT_BYTES, out_bytes as f64);
    acnt.add(keys::RECORDS_EMITTED, records as f64);
    let (env, partitioned, n_red, spill_to_pfs, output_to_pfs, job_name, dir, node, task) = {
        let dd = d.borrow();
        let info = &dd.attempts[&id];
        // A shuffle-sink stage partitions for the *downstream* stage's
        // width; a classic job partitions for its own reducers.
        let sink_parts = dd.job.shuffle.as_ref().map(|s| s.n_partitions);
        (
            dd.env.clone(),
            dd.job.reduce_fn.is_some() || sink_parts.is_some(),
            sink_parts.unwrap_or(dd.job.n_reducers),
            dd.job.spill_to_pfs,
            dd.job.output_to_pfs,
            dd.job.name.clone(),
            dd.job.output_dir.clone(),
            info.node,
            info.task,
        )
    };
    if partitioned {
        // Partition + spill.
        let mut parts: Vec<Vec<Kv>> = (0..n_red).map(|_| Vec::new()).collect();
        for kv in emitted {
            let p = (stable_hash(&kv.key) % n_red as u64) as usize;
            parts[p].push(kv);
        }
        let spill_start = sim.now().secs();
        let d2 = d.clone();
        let finish_spill = move |sim: &mut Sim, mut phases: Vec<(&'static str, f64)>| {
            if !attempt_live(&d2, id) {
                return;
            }
            phases.push(("spill", sim.now().secs() - spill_start));
            commit_task(sim, &d2, id, phases, Some(parts), &acnt);
        };
        if spill_to_pfs {
            // Connector mode: intermediate data crosses the network to the
            // PFS (the "diskless" deployment of the Lustre connectors). The
            // path is task-scoped (not attempt-scoped) and `write_new`
            // replaces — twins racing here write identical bytes, so either
            // order leaves a correct spill file.
            let spill_path = format!("_spill/{job_name}/m{task:05}");
            pfs::write_new(
                sim,
                &env.topo,
                &env.pfs,
                node,
                spill_path,
                vec![0u8; out_bytes],
                move |sim| finish_spill(sim, phases),
            );
        } else {
            let bytes = sim.cost.lbytes(out_bytes);
            let path = env.topo.path_local_disk(node);
            sim.start_flow(path, bytes, move |sim| finish_spill(sim, phases));
        }
    } else {
        // Map-only: write under an attempt-scoped temp name, rename into
        // place at commit — an orphaned attempt's file never shadows the
        // winner's.
        let data = serialize_kvs(&emitted);
        if data.is_empty() {
            commit_task(sim, d, id, phases, Some(Vec::new()), &acnt);
            return;
        }
        let tmp = format!("{dir}/_tmp/attempt-{id}");
        let tmp_w = tmp.clone();
        let final_path = format!("{dir}/part-m-{task:05}");
        let len = data.len() as f64;
        let write_start = sim.now().secs();
        let d2 = d.clone();
        let mut finish_write = move |sim: &mut Sim, mut phases: Vec<(&'static str, f64)>| {
            if !promote_task_output(&d2, id, &tmp, &final_path, output_to_pfs, len, &mut acnt) {
                return;
            }
            phases.push(("write", sim.now().secs() - write_start));
            commit_task(sim, &d2, id, phases, Some(Vec::new()), &acnt);
        };
        if output_to_pfs {
            pfs::write_new(sim, &env.topo, &env.pfs, node, tmp_w, data, move |sim| {
                finish_write(sim, phases)
            });
        } else {
            let res = hdfs::write_file(sim, &env.topo, &env.hdfs, node, tmp_w, data, move |sim| {
                finish_write(sim, phases)
            });
            if let Err(e) = res {
                attempt_failed(sim, d, id, MrError::msg(format!("hdfs: {e}")));
            }
        }
    }
}

fn maybe_finish_maps(sim: &mut Sim, d: &SharedDriver) {
    let action = {
        let mut dd = d.borrow_mut();
        if !dd.alive() || dd.maps_done < dd.n_maps {
            return;
        }
        if dd.job.reduce_fn.is_some() {
            if dd.reduce_phase {
                return; // reducers already queued
            }
            dd.reduce_phase = true;
            dd.pending_reduces = (0..dd.job.n_reducers).collect();
            true
        } else {
            false
        }
    };
    if action {
        try_schedule(sim, d);
    } else {
        complete(sim, d);
    }
}

/// Run one reduce attempt: shuffle, sort, reduce, write. Map outputs are
/// *cloned* per pull (not drained) so a retried reducer can shuffle again.
fn run_reduce_attempt(sim: &mut Sim, d: &SharedDriver, id: AttemptId) {
    let startup = sim.cost.task_startup_s;
    let (r, node) = {
        let dd = d.borrow();
        let info = &dd.attempts[&id];
        (info.task, info.node)
    };
    let d2 = d.clone();
    sim.after(startup, move |sim| {
        if !attempt_live(&d2, id) {
            return;
        }
        // Shuffle: pull partition r from every map.
        let (transfers, env) = {
            let dd = d2.borrow();
            let mut t: Vec<(usize, NodeId, Vec<Kv>)> = Vec::new();
            for m in 0..dd.n_maps {
                if dd.map_outputs[m].len() > r {
                    let kvs = dd.map_outputs[m][r].clone();
                    if !kvs.is_empty() {
                        t.push((m, dd.map_nodes[m], kvs));
                    }
                }
            }
            (t, dd.env.clone())
        };
        let shuffle_start = sim.now().secs();
        let shuffle_bytes: usize = transfers
            .iter()
            .flat_map(|(_, _, kvs)| kvs.iter())
            .map(|kv| kv.key.len() + kv.value.approx_bytes())
            .sum();
        let mut acnt = Counters::new();
        acnt.add(keys::SHUFFLE_BYTES, shuffle_bytes as f64);
        let collected: Rc<RefCell<Vec<Kv>>> = Rc::new(RefCell::new(Vec::new()));
        let n_transfers = transfers.len();
        let remaining = Rc::new(RefCell::new(n_transfers));
        let d3 = d2.clone();
        let after_shuffle = Rc::new(RefCell::new(Some(Box::new(
            move |sim: &mut Sim, kvs: Vec<Kv>| {
                reduce_execute(sim, &d3, id, startup, shuffle_start, kvs, acnt);
            },
        )
            as Box<dyn FnOnce(&mut Sim, Vec<Kv>)>)));
        if n_transfers == 0 {
            let Some(cb) = after_shuffle.borrow_mut().take() else {
                return;
            };
            cb(sim, Vec::new());
            return;
        }
        let spill_to_pfs = d2.borrow().job.spill_to_pfs;
        let job_name = d2.borrow().job.name.clone();
        let mut spill_read_err: Option<MrError> = None;
        for (m_idx, src, kvs) in transfers {
            let bytes: usize = kvs
                .iter()
                .map(|kv| kv.key.len() + kv.value.approx_bytes())
                .sum();
            let collected = collected.clone();
            let remaining = remaining.clone();
            let after_shuffle = after_shuffle.clone();
            let d4 = d2.clone();
            let arrive = move |sim: &mut Sim| {
                if !attempt_live(&d4, id) {
                    return;
                }
                collected.borrow_mut().extend(kvs);
                let mut rem = remaining.borrow_mut();
                *rem -= 1;
                if *rem == 0 {
                    drop(rem);
                    let Some(cb) = after_shuffle.borrow_mut().take() else {
                        return;
                    };
                    let kvs = std::mem::take(&mut *collected.borrow_mut());
                    cb(sim, kvs);
                }
            };
            if spill_to_pfs {
                // Fetch the partition back from the PFS spill file. The
                // exact byte range is immaterial to the timing model; the
                // volume is.
                let spill_path = format!("_spill/{job_name}/m{m_idx:05}");
                let have = env.pfs.borrow().len_of(&spill_path).unwrap_or(0);
                let len = bytes.min(have);
                let res = pfs::read_at(
                    sim,
                    &env.topo,
                    &env.pfs,
                    node,
                    &spill_path,
                    0,
                    len,
                    move |sim, _| arrive(sim),
                );
                if let Err(e) = res {
                    // Un-issued pulls keep `remaining` above zero, so the
                    // after_shuffle callback can never double-fire.
                    spill_read_err = Some(MrError::msg(format!("pfs: {e} ({spill_path})")));
                    break;
                }
            } else {
                let flow_bytes = sim.cost.lbytes(bytes);
                let path = env.topo.path_net(src, node);
                sim.start_flow(path, flow_bytes, arrive);
            }
        }
        if let Some(e) = spill_read_err {
            attempt_failed(sim, &d2, id, e);
        }
    });
}

fn reduce_execute(
    sim: &mut Sim,
    d: &SharedDriver,
    id: AttemptId,
    startup: f64,
    shuffle_start: f64,
    kvs: Vec<Kv>,
    mut acnt: Counters,
) {
    if !attempt_live(d, id) {
        return;
    }
    let (env, r, node, output_to_pfs, dir) = {
        let dd = d.borrow();
        let info = &dd.attempts[&id];
        (
            dd.env.clone(),
            info.task,
            info.node,
            dd.job.output_to_pfs,
            dd.job.output_dir.clone(),
        )
    };
    let shuffle_s = sim.now().secs() - shuffle_start;
    let in_bytes: usize = kvs
        .iter()
        .map(|kv| kv.key.len() + kv.value.approx_bytes())
        .sum();
    // Sort/merge (real grouping via BTreeMap).
    let sort_s = sim.cost.lbytes(in_bytes) * sim.cost.sort_per_byte;
    let mut groups: BTreeMap<String, Vec<Payload>> = BTreeMap::new();
    for kv in kvs {
        groups.entry(kv.key).or_default().push(kv.value);
    }
    let Some(reduce_fn) = d.borrow().job.reduce_fn.clone() else {
        attempt_failed(sim, d, id, MrError::msg("reduce task without a reduce_fn"));
        return;
    };
    let mut ctx = TaskCtx::new(sim.cost.clone());
    for (key, values) in groups {
        if let Err(e) = (reduce_fn)(&key, values, &mut ctx) {
            attempt_failed(sim, d, id, e);
            return;
        }
    }
    let slow = sim.faults.slow_factor(node.0);
    let compute = (ctx.total_charge() + sort_s) * slow;
    let mut phases = vec![
        ("startup", startup),
        ("shuffle", shuffle_s),
        ("sort", sort_s * slow),
    ];
    for (p, s) in &ctx.charges {
        phases.push((p, s * slow));
    }
    let records = ctx.records;
    let emitted = ctx.emitted;
    let d2 = d.clone();
    sim.after(compute, move |sim| {
        if !attempt_live(&d2, id) || node_silent(sim, node) {
            return;
        }
        acnt.add(keys::RECORDS_EMITTED, records as f64);
        let data = serialize_kvs(&emitted);
        if data.is_empty() {
            commit_task(sim, &d2, id, phases, None, &acnt);
            return;
        }
        // Attempt-scoped temp file, renamed into place at commit.
        let tmp = format!("{dir}/_tmp/attempt-{id}");
        let tmp_w = tmp.clone();
        let final_path = format!("{dir}/part-r-{r:05}");
        let len = data.len() as f64;
        let write_start = sim.now().secs();
        let d3 = d2.clone();
        let mut finish = move |sim: &mut Sim, mut phases: Vec<(&'static str, f64)>| {
            if !promote_task_output(&d3, id, &tmp, &final_path, output_to_pfs, len, &mut acnt) {
                return;
            }
            phases.push(("write", sim.now().secs() - write_start));
            commit_task(sim, &d3, id, phases, None, &acnt);
        };
        if output_to_pfs {
            pfs::write_new(sim, &env.topo, &env.pfs, node, tmp_w, data, move |sim| {
                finish(sim, phases)
            });
        } else {
            let res = hdfs::write_file(sim, &env.topo, &env.hdfs, node, tmp_w, data, move |sim| {
                finish(sim, phases)
            });
            if let Err(e) = res {
                attempt_failed(sim, &d2, id, MrError::msg(format!("hdfs: {e}")));
            }
        }
    });
}

pub(crate) fn serialize_kvs(kvs: &[Kv]) -> Vec<u8> {
    let mut out = Vec::new();
    for kv in kvs {
        out.extend_from_slice(kv.key.as_bytes());
        out.push(b'\t');
        match &kv.value {
            Payload::Bytes(b) => out.extend_from_slice(b),
            Payload::Frame(f) => {
                // Frames persist as CSV (what rhdfs writes back).
                let mut text = String::new();
                for (i, n) in f.names().iter().enumerate() {
                    if i > 0 {
                        text.push(',');
                    }
                    text.push_str(n);
                }
                text.push('\n');
                for row in 0..f.n_rows() {
                    for c in 0..f.n_cols() {
                        if c > 0 {
                            text.push(',');
                        }
                        text.push_str(&f.column_at(c).value(row).to_string());
                    }
                    text.push('\n');
                }
                out.extend_from_slice(text.as_bytes());
            }
        }
        out.push(b'\n');
    }
    out
}

fn fail_job(sim: &mut Sim, d: &SharedDriver, e: MrError) {
    let cb = {
        let mut dd = d.borrow_mut();
        if dd.failed.is_none() {
            dd.failed = Some(e.clone());
        }
        // Orphan every in-flight attempt and drop the queues: their
        // continuations see `attempt_live` false and can no longer mutate
        // counters or reports.
        dd.attempts.clear();
        dd.pending_maps.clear();
        dd.pending_reduces.clear();
        dd.done_cb.take()
    };
    if let Some(cb) = cb {
        cb(sim, Err(e));
    }
}

fn complete(sim: &mut Sim, d: &SharedDriver) {
    let (result, cb) = {
        let mut dd = d.borrow_mut();
        if dd.done_cb.is_none() {
            return;
        }
        let mut tasks = std::mem::take(&mut dd.reports);
        tasks.sort_by_key(|t| (t.kind == TaskKind::Reduce, t.index));
        // Cluster-cache evictions during this job's run (registry stats
        // are world-lifetime monotonic; the delta is this job's share).
        if dd.env.cluster_cache.enabled() {
            let evicted = dd
                .env
                .cluster_cache
                .stats()
                .evictions
                .saturating_sub(dd.cluster_evictions_start);
            if evicted > 0 {
                dd.counters
                    .add(keys::CLUSTER_CACHE_EVICTIONS, evicted as f64);
            }
        }
        let result = JobResult {
            name: dd.job.name.clone(),
            start_s: dd.start_s,
            end_s: sim.now().secs(),
            tasks,
            counters: dd.counters.clone(),
        };
        (result, dd.done_cb.take())
    };
    if let Some(cb) = cb {
        cb(sim, Ok(result));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{hdfs_file_splits, InMemoryFetcher, InputSplit};
    use pfs::PfsConfig;
    use simnet::{ClusterSpec, CostModel, FaultPlan};

    fn small_cluster(nodes: usize, slots: usize) -> Cluster {
        let spec = ClusterSpec {
            compute_nodes: nodes,
            storage_nodes: 1,
            osts: 2,
            slots_per_node: slots,
            ..ClusterSpec::default()
        };
        let pfs_cfg = PfsConfig {
            n_osts: 2,
            ..PfsConfig::default()
        };
        Cluster::new(spec, pfs_cfg, 1 << 16, 1, CostModel::default())
    }

    fn mem_splits(n: usize, bytes: usize) -> Vec<InputSplit> {
        (0..n)
            .map(|i| InputSplit {
                length: bytes as u64,
                locations: vec![],
                fetcher: Rc::new(InMemoryFetcher {
                    data: vec![i as u8; bytes],
                }),
            })
            .collect()
    }

    fn word_count_job(splits: Vec<InputSplit>, reducers: usize) -> Job {
        Job {
            name: "wordcount".into(),
            spill_to_pfs: false,
            output_to_pfs: false,
            splits,
            map_fn: Rc::new(|input, ctx| {
                let TaskInput::Bytes(b) = input else {
                    return Err(MrError::msg("expected bytes"));
                };
                // Count byte values (stand-in for words).
                let mut counts: BTreeMap<u8, usize> = BTreeMap::new();
                for &x in &b {
                    *counts.entry(x).or_default() += 1;
                }
                ctx.charge("scan", ctx.cost().scan_per_byte * b.len() as f64);
                for (k, v) in counts {
                    ctx.emit(format!("w{k}"), Payload::Bytes(v.to_string().into_bytes()));
                }
                Ok(())
            }),
            reduce_fn: Some(Rc::new(|key, values, ctx| {
                let total: usize = values
                    .iter()
                    .map(|v| match v {
                        Payload::Bytes(b) => String::from_utf8_lossy(b).parse::<usize>().unwrap(),
                        _ => 0,
                    })
                    .sum();
                ctx.emit(key, Payload::Bytes(total.to_string().into_bytes()));
                Ok(())
            })),
            n_reducers: reducers,
            output_dir: "out".into(),
            ft: FtConfig::default(),
            stream: StreamConfig::default(),
            shuffle: None,
        }
    }

    #[test]
    fn map_reduce_end_to_end() {
        let mut c = small_cluster(2, 2);
        let job = word_count_job(mem_splits(4, 100), 2);
        let r = run_job(&mut c, job).unwrap();
        assert_eq!(r.counters.get(keys::MAP_TASKS), 4.0);
        assert_eq!(r.counters.get(keys::REDUCE_TASKS), 2.0);
        assert!(r.elapsed() > 0.0);
        // Each split is 100 identical bytes → each map emits one record.
        assert_eq!(r.counters.get(keys::RECORDS_EMITTED), 8.0);
        // Output files exist on HDFS.
        let h = c.hdfs.borrow();
        let files = h.namenode.list_files_recursive("out").unwrap();
        assert!(!files.is_empty());
        let total: u64 = files.iter().map(|f| f.len).sum();
        assert!(total > 0);
        // 4 maps + 2 reduces reported, maps first.
        assert_eq!(r.tasks.len(), 6);
        assert_eq!(r.tasks[0].kind, TaskKind::Map);
        assert_eq!(r.tasks[5].kind, TaskKind::Reduce);
    }

    #[test]
    fn reduce_output_values_are_correct() {
        // All splits carry byte value 7 → one key, count = total bytes.
        let mut c = small_cluster(2, 2);
        let splits: Vec<InputSplit> = (0..3)
            .map(|_| InputSplit {
                length: 50,
                locations: vec![],
                fetcher: Rc::new(InMemoryFetcher { data: vec![7; 50] }),
            })
            .collect();
        let job = word_count_job(splits, 1);
        run_job(&mut c, job).unwrap();
        let h = c.hdfs.borrow();
        let files = h.namenode.list_files_recursive("out").unwrap();
        assert_eq!(files.len(), 1);
        // Read back through datanodes (single block).
        let blocks = h.namenode.blocks(&files[0].path).unwrap();
        let data = h
            .datanodes
            .get(blocks[0].locations()[0], blocks[0].id)
            .unwrap();
        let text = String::from_utf8(data.as_ref().clone()).unwrap();
        assert_eq!(text.trim(), "w7\t150");
    }

    #[test]
    fn map_only_job_writes_part_m_files() {
        let mut c = small_cluster(2, 2);
        let mut job = word_count_job(mem_splits(3, 10), 1);
        job.reduce_fn = None;
        let r = run_job(&mut c, job).unwrap();
        assert_eq!(r.counters.get(keys::REDUCE_TASKS), 0.0);
        let h = c.hdfs.borrow();
        let files = h.namenode.list_files_recursive("out").unwrap();
        assert_eq!(files.len(), 3);
        assert!(files[0].path.contains("part-m-"));
    }

    #[test]
    fn slots_limit_parallelism() {
        // 8 equal tasks, 1 node: with 1 slot the job takes ~8x the span of
        // a single task; with 8 slots roughly 1x (plus contention).
        let elapsed = |slots: usize| {
            let mut c = small_cluster(1, slots);
            let job = word_count_job(mem_splits(8, 1000), 1);
            run_job(&mut c, job).unwrap().elapsed()
        };
        let serial = elapsed(1);
        let parallel = elapsed(8);
        assert!(
            serial > 4.0 * parallel,
            "slots not limiting: serial={serial}, parallel={parallel}"
        );
    }

    #[test]
    fn locality_preferred_when_available() {
        let mut c = small_cluster(2, 1);
        // Stage a real HDFS file: 2 blocks land on different nodes.
        hdfs::write_file(
            &mut c.sim,
            &c.topo,
            &c.hdfs,
            NodeId(0),
            "in",
            vec![1u8; (1 << 16) + 100],
            |_| {},
        )
        .unwrap();
        c.run();
        let env = c.env();
        let splits = hdfs_file_splits(&env, "in").expect("staged input path");
        assert_eq!(splits.len(), 2);
        let job = word_count_job(splits, 1);
        let r = run_job(&mut c, job).unwrap();
        // Both blocks were written from node 0 → both local there; at least
        // one map must be data-local.
        assert!(r.counters.get(keys::LOCAL_MAPS) >= 1.0);
        // locality_ratio counts only locality-eligible maps: with 2 maps
        // over located splits, local+remote is exactly 2 and the ratio is
        // local/2 ≥ 0.5 (any-locality maps would be excluded entirely).
        let ratio = r.locality_ratio().expect("located splits are eligible");
        let local = r.counters.get(keys::LOCAL_MAPS);
        let remote = r.counters.get(keys::REMOTE_MAPS);
        assert_eq!(local + remote, 2.0, "both maps locality-eligible");
        assert!((ratio - local / (local + remote)).abs() < 1e-12);
        assert!(ratio >= 0.5, "locality ratio too low: {ratio}");
        assert_eq!(r.counters.get(keys::ANY_MAPS), 0.0);
        for t in r.tasks.iter().filter(|t| t.kind == TaskKind::Map) {
            assert!(t.phase("read") > 0.0, "read phase recorded");
            assert!(t.phase("startup") > 0.0);
        }
    }

    #[test]
    fn failing_map_fails_job() {
        let mut c = small_cluster(1, 1);
        let job = Job {
            name: "boom".into(),
            spill_to_pfs: false,
            output_to_pfs: false,
            splits: mem_splits(2, 10),
            map_fn: Rc::new(|_, _| Err(MrError::msg("kaboom"))),
            reduce_fn: None,
            n_reducers: 1,
            output_dir: "out".into(),
            ft: FtConfig::default(),
            stream: StreamConfig::default(),
            shuffle: None,
        };
        let r = run_job(&mut c, job);
        assert_eq!(r.unwrap_err(), MrError::msg("kaboom"));
    }

    #[test]
    fn empty_job_completes() {
        let mut c = small_cluster(1, 1);
        let job = word_count_job(Vec::new(), 1);
        let r = run_job(&mut c, job).unwrap();
        assert_eq!(r.counters.get(keys::MAP_TASKS), 0.0);
        // Reduce still runs (Hadoop would too) and writes nothing.
        assert_eq!(r.counters.get(keys::REDUCE_TASKS), 1.0);
    }

    #[test]
    fn non_local_tasks_spread_across_nodes() {
        // Location-free splits must not pile onto node 0: with 4 nodes and
        // 4 equal tasks, every node runs exactly one.
        let mut c = small_cluster(4, 8);
        let mut nodes_used = std::collections::HashSet::new();
        let job = word_count_job(mem_splits(4, 100), 1);
        let r = run_job(&mut c, job).unwrap();
        for t in r.tasks.iter().filter(|t| t.kind == TaskKind::Map) {
            nodes_used.insert(t.node);
        }
        assert_eq!(nodes_used.len(), 4, "tasks not spread: {nodes_used:?}");
    }

    #[test]
    fn deterministic_execution() {
        let run = || {
            let mut c = small_cluster(2, 2);
            let job = word_count_job(mem_splits(6, 500), 2);
            let r = run_job(&mut c, job).unwrap();
            (r.elapsed(), r.counters.get(keys::SHUFFLE_BYTES))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn charges_appear_in_task_phases() {
        let mut c = small_cluster(1, 1);
        let job = Job {
            name: "charge".into(),
            spill_to_pfs: false,
            output_to_pfs: false,
            splits: mem_splits(1, 10),
            map_fn: Rc::new(|_, ctx| {
                ctx.charge("plot", 2.0);
                ctx.charge("plot", 1.0);
                ctx.charge("convert", 0.5);
                Ok(())
            }),
            reduce_fn: None,
            n_reducers: 1,
            output_dir: "out".into(),
            ft: FtConfig::default(),
            stream: StreamConfig::default(),
            shuffle: None,
        };
        let r = run_job(&mut c, job).unwrap();
        let t = &r.tasks[0];
        assert!((t.phase("plot") - 3.0).abs() < 1e-9);
        assert!((t.phase("convert") - 0.5).abs() < 1e-9);
        // Wall time covers startup + compute.
        assert!(t.duration() >= 3.5);
        assert!((r.mean_phase(TaskKind::Map, "plot") - 3.0).abs() < 1e-9);
    }

    #[test]
    fn median_survives_nan_durations() {
        // Regression: a NaN duration used to panic the sort comparator
        // (`partial_cmp().expect(...)`) mid-job.
        assert!(median(&[f64::NAN]).is_nan());
        // NaNs sort last under total_cmp, so the finite majority wins.
        assert_eq!(median(&[3.0, f64::NAN, 1.0]), 3.0);
        assert_eq!(median(&[2.0, 1.0, f64::NAN, 4.0]), 3.0);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
    }

    #[test]
    fn stream_fallback_counted_exactly_once_per_task() {
        // InMemoryFetcher has no streaming support: with streaming enabled
        // every map attempt falls back to the batch path and says so.
        let mut c = small_cluster(2, 2);
        let mut job = word_count_job(mem_splits(4, 100), 1);
        job.stream = StreamConfig {
            enabled: true,
            prefetch_depth: 2,
        };
        let r = run_job(&mut c, job).unwrap();
        assert_eq!(r.counters.get(keys::STREAM_FALLBACKS), 4.0);
        assert_eq!(r.counters.get(keys::STREAM_FALLBACK_UNSUPPORTED), 4.0);
        assert_eq!(r.counters.get(keys::STREAM_FALLBACK_PUSHDOWN), 0.0);
        assert_eq!(
            r.stream_fallbacks().as_deref(),
            Some("4 stream fallback(s) (4 unsupported fetcher, 0 pushdown)")
        );
        // With streaming off the counter stays silent.
        let mut c2 = small_cluster(2, 2);
        let mut job2 = word_count_job(mem_splits(4, 100), 1);
        job2.stream = StreamConfig {
            enabled: false,
            prefetch_depth: 2,
        };
        let r2 = run_job(&mut c2, job2).unwrap();
        assert_eq!(r2.counters.get(keys::STREAM_FALLBACKS), 0.0);
        assert_eq!(r2.stream_fallbacks(), None);
    }

    #[test]
    fn speculative_attempt_is_exempt_from_the_retry_budget() {
        // max_task_attempts = 1: no retries at all. A straggler twin must
        // still launch (it is not a retry), and losing the straggler node
        // afterwards must not count the twin against the exhausted budget.
        let ft = FtConfig {
            max_task_attempts: 1,
            node_blacklist_threshold: 0,
            speculative: true,
            speculative_slowdown: 2.0,
            speculative_min_completed: 0.5,
            ..FtConfig::default()
        };
        let splits = mem_splits(4, 4000);
        let mk_job = |splits: Vec<InputSplit>, ft: FtConfig| Job {
            name: "spec".into(),
            spill_to_pfs: false,
            output_to_pfs: false,
            splits,
            map_fn: Rc::new(|input, ctx| {
                let TaskInput::Bytes(b) = input else {
                    return Err(MrError::msg("expected bytes"));
                };
                // Compute-bound so the slow-node factor dominates startup.
                ctx.charge("scan", 10.0);
                ctx.emit("k".to_string(), Payload::Bytes(vec![b[0]]));
                Ok(())
            }),
            reduce_fn: None,
            n_reducers: 1,
            output_dir: "out".into(),
            ft,
            stream: StreamConfig::default(),
            shuffle: None,
        };
        // Clean elapsed calibrates the kill time below.
        let mut clean = small_cluster(2, 2);
        let rc = run_job(&mut clean, mk_job(mem_splits(4, 4000), ft.clone())).unwrap();
        let e = rc.elapsed();

        // Node 1 straggles 20x; its two tasks get speculative twins on
        // node 0 once node 0's tasks commit. Kill node 1 while the twins
        // run: the originals die with the budget long spent.
        let mut c = small_cluster(2, 2);
        c.sim
            .faults
            .install(FaultPlan::none().slow_node(1, 20.0).kill_node(1, 2.3 * e));
        let r = run_job(&mut c, mk_job(splits, ft)).unwrap();
        assert!(
            r.counters.get(keys::SPECULATIVE_LAUNCHED) >= 1.0,
            "budget of 1 must not block speculation: {:?}",
            r.counters
        );
        // The twins were never booked as retries.
        assert_eq!(r.counters.get(keys::TASK_RETRIES), 0.0);
        assert_eq!(r.counters.get(keys::MAP_TASKS), 4.0);
        // First-commit-wins: the job ends on the twins, not on the 20x
        // stragglers (which would take ~200s of compute).
        assert!(r.elapsed() < 100.0, "elapsed {}", r.elapsed());
        assert!(r.elapsed() > 2.3 * e, "the kill landed mid-run");
    }

    /// A compute-bound job whose map charges a fixed `secs` so detector
    /// timelines are easy to reason about.
    fn slow_map_job(n_splits: usize, secs: f64, ft: FtConfig) -> Job {
        Job {
            name: "slowmap".into(),
            spill_to_pfs: false,
            output_to_pfs: false,
            splits: mem_splits(n_splits, 100),
            map_fn: Rc::new(move |input, ctx| {
                let TaskInput::Bytes(b) = input else {
                    return Err(MrError::msg("expected bytes"));
                };
                ctx.charge("scan", secs);
                ctx.emit(format!("k{}", b[0]), Payload::Bytes(vec![b[0]]));
                Ok(())
            }),
            reduce_fn: Some(Rc::new(|key, values, ctx| {
                ctx.emit(key, Payload::Bytes(vec![values.len() as u8]));
                Ok(())
            })),
            n_reducers: 1,
            output_dir: "out".into(),
            ft,
            stream: StreamConfig::default(),
            shuffle: None,
        }
    }

    #[test]
    fn hung_node_is_declared_dead_and_job_degrades() {
        let mut c = small_cluster(3, 1);
        c.sim.faults.install(FaultPlan::none().hang_node(2, 0.5));
        let ft = FtConfig {
            heartbeat_interval_s: 1.0,
            suspect_after_misses: 2,
            dead_after_misses: 3,
            hang_deadline_min_s: 60.0,
            ..FtConfig::default()
        };
        let r = run_job(&mut c, slow_map_job(6, 2.0, ft)).unwrap();
        // All tasks complete on the two surviving nodes.
        assert_eq!(r.counters.get(keys::MAP_TASKS), 6.0);
        assert_eq!(r.counters.get(keys::REDUCE_TASKS), 1.0);
        assert!(r.counters.get(keys::HEARTBEATS_MISSED) >= 3.0);
        assert_eq!(r.counters.get(keys::NODES_SUSPECTED), 1.0);
        // A hang never heals: no reinstatement, and the detector path must
        // not blacklist the node (the fault, not the node, is to blame).
        assert_eq!(r.counters.get(keys::NODES_REINSTATED), 0.0);
        assert_eq!(r.counters.get(keys::NODE_BLACKLISTED), 0.0);
        assert!(r.counters.get(keys::TASK_RETRIES) >= 1.0);
        let summary = r.fault_summary().expect("degraded run has a summary");
        assert!(summary.contains("suspected"), "summary: {summary}");
    }

    #[test]
    fn healed_partition_reinstates_instead_of_blacklisting() {
        let mut c = small_cluster(3, 1);
        c.sim
            .faults
            .install(FaultPlan::none().partition(&[2], 0.5, 10.0));
        let ft = FtConfig {
            heartbeat_interval_s: 1.0,
            suspect_after_misses: 1,
            dead_after_misses: 2,
            hang_deadline_min_s: 60.0,
            ..FtConfig::default()
        };
        // 9 maps x 3s on effectively 2 nodes: the job outlives the heal at
        // t = 10, so the tick after it sees node 2's heartbeats resume.
        let r = run_job(&mut c, slow_map_job(9, 3.0, ft)).unwrap();
        assert_eq!(r.counters.get(keys::MAP_TASKS), 9.0);
        assert_eq!(r.counters.get(keys::PARTITIONS_OBSERVED), 1.0);
        assert!(r.counters.get(keys::NODES_SUSPECTED) >= 1.0);
        assert!(
            r.counters.get(keys::NODES_REINSTATED) >= 1.0,
            "healed partition must reinstate: {:?}",
            r.counters
        );
        assert_eq!(
            r.counters.get(keys::NODE_BLACKLISTED),
            0.0,
            "a healed partition must not leave the node blacklisted"
        );
    }

    #[test]
    fn quorum_floor_breached_fails_typed() {
        let mut c = small_cluster(2, 1);
        c.sim.faults.install(FaultPlan::none().hang_node(1, 0.2));
        let ft = FtConfig {
            heartbeat_interval_s: 1.0,
            suspect_after_misses: 1,
            dead_after_misses: 2,
            min_live_slots: 2,
            ..FtConfig::default()
        };
        let err = run_job(&mut c, slow_map_job(4, 2.0, ft)).unwrap_err();
        match err {
            MrError::QuorumLost { live_slots, floor } => {
                assert_eq!(live_slots, 1);
                assert_eq!(floor, 2);
            }
            other => panic!("expected QuorumLost, got {other:?}"),
        }
    }

    #[test]
    fn fault_summary_folds_in_detector_and_lineage_counters() {
        let mk = |f: &dyn Fn(&mut Counters)| {
            let mut c = Counters::new();
            c.add(keys::MAP_ATTEMPTS, 4.0);
            c.add(keys::MAP_TASKS, 4.0);
            f(&mut c);
            JobResult {
                name: "s".into(),
                start_s: 0.0,
                end_s: 1.0,
                tasks: vec![],
                counters: c,
            }
        };
        // A multi-stage DAG is not a fault: stages_run alone stays silent.
        assert_eq!(mk(&|c| c.add(keys::STAGES_RUN, 3.0)).fault_summary(), None);
        let det = mk(&|c| {
            c.add(keys::TASKS_HANG_DETECTED, 1.0);
            c.add(keys::NODES_SUSPECTED, 1.0);
            c.add(keys::NODES_REINSTATED, 1.0);
            c.add(keys::HEARTBEATS_MISSED, 5.0);
        });
        let s = det
            .fault_summary()
            .expect("detector events trigger summary");
        assert!(
            s.contains("1 hang(s)") && s.contains("1 suspected / 1 reinstated"),
            "summary: {s}"
        );
        let lin = mk(&|c| {
            c.add(keys::SHUFFLE_PARTITIONS_LOST, 2.0);
            c.add(keys::LINEAGE_RECOMPUTES, 3.0);
            c.add(keys::STAGES_RUN, 4.0);
        });
        let s = lin
            .fault_summary()
            .expect("lineage recovery triggers summary");
        assert!(
            s.contains("2 shuffle partition(s) lost") && s.contains("4 stage run(s)"),
            "summary: {s}"
        );
        let hedge = mk(&|c| {
            c.add(keys::HEDGED_READS, 2.0);
            c.add(keys::HEDGED_READ_WINS, 1.0);
        });
        let s = hedge.fault_summary().expect("hedged reads trigger summary");
        assert!(s.contains("2 hedged read(s) / 1 won"), "summary: {s}");
    }
}
