//! The job driver: slot scheduling, map execution, shuffle, reduce, output.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::rc::Rc;

use simnet::{NodeId, Sim};

use crate::cluster::{Cluster, MrEnv};
use crate::counters::{keys, Counters};
use crate::input::{InputSplit, TaskInput};

/// Task-level failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MrError(pub String);

impl fmt::Display for MrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task failed: {}", self.0)
    }
}

impl std::error::Error for MrError {}

/// A value travelling through the shuffle.
#[derive(Debug, Clone)]
pub enum Payload {
    Bytes(Vec<u8>),
    Frame(rframe::DataFrame),
}

impl Payload {
    pub fn approx_bytes(&self) -> usize {
        match self {
            Payload::Bytes(b) => b.len(),
            Payload::Frame(f) => f.approx_bytes(),
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Kv {
    pub key: String,
    pub value: Payload,
}

/// Execution context handed to map/reduce closures: charge virtual compute,
/// emit key/value pairs.
pub struct TaskCtx {
    cost: simnet::CostModel,
    charges: Vec<(&'static str, f64)>,
    emitted: Vec<Kv>,
    records: u64,
    tag: String,
}

impl TaskCtx {
    /// Standalone context for running task payloads outside the engine
    /// (the naive baseline processes files without Hadoop).
    pub fn standalone(cost: simnet::CostModel) -> TaskCtx {
        TaskCtx::new(cost)
    }

    /// Set the split tag (engine-internal; also used by standalone runs).
    pub fn set_tag(&mut self, tag: impl Into<String>) {
        self.tag = tag.into();
    }

    /// Sum of all charges so far.
    pub fn total_charge_s(&self) -> f64 {
        self.total_charge()
    }

    /// Drain emitted pairs (standalone runs handle their own output).
    pub fn take_emitted(&mut self) -> Vec<(String, Payload)> {
        std::mem::take(&mut self.emitted)
            .into_iter()
            .map(|kv| (kv.key, kv.value))
            .collect()
    }

    fn new(cost: simnet::CostModel) -> TaskCtx {
        TaskCtx {
            cost,
            charges: Vec::new(),
            emitted: Vec::new(),
            records: 0,
            tag: String::new(),
        }
    }

    /// Split metadata set by the fetcher (empty when the fetcher sets
    /// none) — how SciDP's R layer learns which slab a task received.
    pub fn input_tag(&self) -> &str {
        &self.tag
    }

    /// The cluster's cost model (to derive charges from byte/pixel counts).
    pub fn cost(&self) -> &simnet::CostModel {
        &self.cost
    }

    /// Charge `secs` of virtual compute under a phase label ("convert",
    /// "plot", "analysis", ...). Phase totals surface in [`TaskReport`].
    pub fn charge(&mut self, phase: &'static str, secs: f64) {
        assert!(secs >= 0.0 && secs.is_finite(), "bad charge {secs}");
        self.charges.push((phase, secs));
    }

    /// Emit a key/value pair into the shuffle (or the task output for
    /// map-only jobs).
    pub fn emit(&mut self, key: impl Into<String>, value: Payload) {
        self.records += 1;
        self.emitted.push(Kv {
            key: key.into(),
            value,
        });
    }

    fn total_charge(&self) -> f64 {
        self.charges.iter().map(|(_, s)| s).sum()
    }
}

/// Map closure: real work over the fetched input.
pub type MapFn = Rc<dyn Fn(TaskInput, &mut TaskCtx) -> Result<(), MrError>>;
/// Reduce closure: one key group at a time.
pub type ReduceFn = Rc<dyn Fn(&str, Vec<Payload>, &mut TaskCtx) -> Result<(), MrError>>;

/// A MapReduce job specification.
#[derive(Clone)]
pub struct Job {
    pub name: String,
    pub splits: Vec<InputSplit>,
    pub map_fn: MapFn,
    /// `None` = map-only job (outputs written as `part-m-*`).
    pub reduce_fn: Option<ReduceFn>,
    pub n_reducers: usize,
    /// Directory for part files (HDFS by default, PFS with
    /// `output_to_pfs`).
    pub output_dir: String,
    /// Lustre-connector mode (Fig. 2): map spills go to the PFS over the
    /// network instead of the node-local disk ("diskless Hadoop").
    pub spill_to_pfs: bool,
    /// Lustre-connector mode: part files are written to the PFS.
    pub output_to_pfs: bool,
}

impl Job {
    /// A standard HDFS-backed job.
    pub fn new(
        name: impl Into<String>,
        splits: Vec<InputSplit>,
        map_fn: MapFn,
        reduce_fn: Option<ReduceFn>,
        n_reducers: usize,
        output_dir: impl Into<String>,
    ) -> Job {
        Job {
            name: name.into(),
            splits,
            map_fn,
            reduce_fn,
            n_reducers,
            output_dir: output_dir.into(),
            spill_to_pfs: false,
            output_to_pfs: false,
        }
    }
}

/// Map or reduce.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskKind {
    Map,
    Reduce,
}

/// Timing of one finished task, decomposed by phase — Figure 7's raw data.
#[derive(Clone, Debug)]
pub struct TaskReport {
    pub kind: TaskKind,
    pub index: usize,
    pub node: NodeId,
    pub start_s: f64,
    pub end_s: f64,
    /// `(phase, virtual seconds)`: "startup", "read", fetch charges,
    /// map charges, "spill" / "shuffle", "sort", "write".
    pub phases: Vec<(&'static str, f64)>,
}

impl TaskReport {
    pub fn duration(&self) -> f64 {
        self.end_s - self.start_s
    }

    /// Total seconds recorded under a phase label.
    pub fn phase(&self, name: &str) -> f64 {
        self.phases
            .iter()
            .filter(|(p, _)| *p == name)
            .map(|(_, s)| s)
            .sum()
    }
}

/// Completed job summary.
#[derive(Clone, Debug)]
pub struct JobResult {
    pub name: String,
    pub start_s: f64,
    pub end_s: f64,
    pub tasks: Vec<TaskReport>,
    pub counters: Counters,
}

impl JobResult {
    pub fn elapsed(&self) -> f64 {
        self.end_s - self.start_s
    }

    /// Mean of a phase over all tasks of one kind.
    pub fn mean_phase(&self, kind: TaskKind, phase: &str) -> f64 {
        let v: Vec<f64> = self
            .tasks
            .iter()
            .filter(|t| t.kind == kind)
            .map(|t| t.phase(phase))
            .collect();
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    }

    /// Mean wall duration of tasks of one kind.
    pub fn mean_task_time(&self, kind: TaskKind) -> f64 {
        let v: Vec<f64> = self
            .tasks
            .iter()
            .filter(|t| t.kind == kind)
            .map(TaskReport::duration)
            .collect();
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

struct Driver {
    env: MrEnv,
    job: Job,
    start_s: f64,
    pending: VecDeque<usize>,
    free_slots: Vec<usize>,
    n_maps: usize,
    maps_done: usize,
    map_outputs: Vec<Vec<Vec<Kv>>>,
    map_nodes: Vec<NodeId>,
    reports: Vec<TaskReport>,
    counters: Counters,
    reduces_done: usize,
    failed: Option<MrError>,
    #[allow(clippy::type_complexity)]
    done_cb: Option<Box<dyn FnOnce(&mut Sim, Result<JobResult, MrError>)>>,
}

type SharedDriver = Rc<RefCell<Driver>>;

fn stable_hash(s: &str) -> u64 {
    // FNV-1a: deterministic across runs and platforms.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Submit a job; `done` fires (with the result) when the last task output
/// commits. The simulation keeps running — callers can chain stages.
pub fn submit_job(
    cluster: &mut Cluster,
    job: Job,
    done: impl FnOnce(&mut Sim, Result<JobResult, MrError>) + 'static,
) {
    let env = cluster.env();
    submit_job_env(&mut cluster.sim, env, job, done)
}

/// Like [`submit_job`] but usable from inside sim callbacks.
pub fn submit_job_env(
    sim: &mut Sim,
    env: MrEnv,
    job: Job,
    done: impl FnOnce(&mut Sim, Result<JobResult, MrError>) + 'static,
) {
    assert!(job.n_reducers > 0 || job.reduce_fn.is_none());
    let n_nodes = env.topo.n_compute();
    let n_maps = job.splits.len();
    let d = Rc::new(RefCell::new(Driver {
        free_slots: vec![env.slots_per_node; n_nodes],
        env,
        start_s: sim.now().secs(),
        pending: (0..n_maps).collect(),
        n_maps,
        maps_done: 0,
        map_outputs: vec![Vec::new(); n_maps],
        map_nodes: vec![NodeId(0); n_maps],
        reports: Vec::new(),
        counters: Counters::new(),
        reduces_done: 0,
        failed: None,
        done_cb: Some(Box::new(done)),
        job,
    }));
    if n_maps == 0 {
        let d2 = d.clone();
        sim.after(0.0, move |sim| maybe_finish_maps(sim, &d2));
        return;
    }
    try_schedule(sim, &d);
}

/// Convenience: submit, run the world to completion, return the result.
pub fn run_job(cluster: &mut Cluster, job: Job) -> Result<JobResult, MrError> {
    let out: Rc<RefCell<Option<Result<JobResult, MrError>>>> = Rc::new(RefCell::new(None));
    let o = out.clone();
    submit_job(cluster, job, move |_, r| {
        *o.borrow_mut() = Some(r);
    });
    cluster.run();
    let result = out.borrow_mut().take().expect("job completed");
    result
}

fn try_schedule(sim: &mut Sim, d: &SharedDriver) {
    loop {
        let pick = {
            let mut dd = d.borrow_mut();
            if dd.failed.is_some() {
                return;
            }
            let mut pick: Option<(NodeId, usize, bool)> = None;
            let n_nodes = dd.free_slots.len();
            'outer: for node in 0..n_nodes {
                if dd.free_slots[node] == 0 {
                    continue;
                }
                let nid = NodeId(node as u32);
                // Locality preference: a pending split stored on this node.
                if let Some(pos) = dd
                    .pending
                    .iter()
                    .position(|&t| dd.job.splits[t].locations.contains(&nid))
                {
                    let t = dd.pending.remove(pos).unwrap();
                    pick = Some((nid, t, true));
                    break 'outer;
                }
            }
            if pick.is_none() && !dd.pending.is_empty() {
                // Any pending task on the least-loaded node with a free
                // slot — spreads non-local work across the cluster.
                let best = (0..n_nodes)
                    .filter(|&n| dd.free_slots[n] > 0)
                    .max_by_key(|&n| dd.free_slots[n]);
                if let Some(node) = best {
                    let t = dd.pending.pop_front().expect("pending nonempty");
                    pick = Some((NodeId(node as u32), t, false));
                }
            }
            if let Some((node, task, local)) = pick {
                dd.free_slots[node.0 as usize] -= 1;
                let has_locations = !dd.job.splits[task].locations.is_empty();
                dd.counters.add(
                    if local || !has_locations {
                        keys::LOCAL_MAPS
                    } else {
                        keys::REMOTE_MAPS
                    },
                    1.0,
                );
                Some((node, task))
            } else {
                None
            }
        };
        match pick {
            Some((node, task)) => run_map_task(sim, d, task, node),
            None => return,
        }
    }
}

fn compute_penalty(d: &SharedDriver) -> f64 {
    let dd = d.borrow();
    if dd.env.slots_per_node > 1 {
        // Shared memory bandwidth / cache interference between co-running
        // tasks; the paper's explanation of naive's slightly faster plots.
        dd.env.topo.spec.slots_per_node as f64 * 0.0 + 1.0 // base
    } else {
        1.0
    }
}

fn run_map_task(sim: &mut Sim, d: &SharedDriver, task: usize, node: NodeId) {
    let (env, startup, fetcher, length) = {
        let mut dd = d.borrow_mut();
        dd.map_nodes[task] = node;
        dd.counters.add(keys::MAP_TASKS, 1.0);
        let split_len = dd.job.splits[task].length as f64;
        dd.counters.add(keys::INPUT_BYTES, split_len);
        (
            dd.env.clone(),
            sim.cost.task_startup_s,
            dd.job.splits[task].fetcher.clone(),
            dd.job.splits[task].length,
        )
    };
    let _ = length;
    let start_s = sim.now().secs();
    let d2 = d.clone();
    sim.after(startup, move |sim| {
        let fetch_start = sim.now().secs();
        let d3 = d2.clone();
        let env2 = env.clone();
        fetcher.fetch(
            &env,
            sim,
            node,
            Box::new(move |sim, fr| {
                let read_s = sim.now().secs() - fetch_start;
                // Real map execution.
                let (map_fn, penalty) = {
                    let dd = d3.borrow();
                    let p = if dd.env.slots_per_node > 1 {
                        sim.cost.parallel_compute_penalty
                    } else {
                        1.0
                    };
                    (dd.job.map_fn.clone(), p)
                };
                let mut ctx = TaskCtx::new(sim.cost.clone());
                ctx.tag = fr.tag;
                for (phase, secs) in &fr.charges {
                    ctx.charge(phase, *secs);
                }
                {
                    let mut dd = d3.borrow_mut();
                    for (key, v) in &fr.counters {
                        dd.counters.add(key, *v);
                    }
                }
                if let Err(e) = (map_fn)(fr.input, &mut ctx) {
                    fail_job(sim, &d3, e);
                    return;
                }
                let compute = ctx.total_charge() * penalty;
                let mut phases = vec![("startup", startup), ("read", read_s)];
                for (p, s) in &ctx.charges {
                    phases.push((p, s * penalty));
                }
                let records = ctx.records;
                let emitted = ctx.emitted;
                let d4 = d3.clone();
                sim.after(compute, move |sim| {
                    finish_map_compute(
                        sim, &d4, task, node, start_s, phases, emitted, records, env2,
                    )
                });
            }),
        );
    });
    let _ = compute_penalty(d);
}

#[allow(clippy::too_many_arguments)]
fn finish_map_compute(
    sim: &mut Sim,
    d: &SharedDriver,
    task: usize,
    node: NodeId,
    start_s: f64,
    phases: Vec<(&'static str, f64)>,
    emitted: Vec<Kv>,
    records: u64,
    env: MrEnv,
) {
    let out_bytes: usize = emitted
        .iter()
        .map(|kv| kv.key.len() + kv.value.approx_bytes())
        .sum();
    {
        let mut dd = d.borrow_mut();
        dd.counters.add(keys::MAP_OUTPUT_BYTES, out_bytes as f64);
        dd.counters.add(keys::RECORDS_EMITTED, records as f64);
    }
    let has_reduce = d.borrow().job.reduce_fn.is_some();
    if has_reduce {
        // Partition + spill to local disk.
        let n_red = d.borrow().job.n_reducers;
        let mut parts: Vec<Vec<Kv>> = (0..n_red).map(|_| Vec::new()).collect();
        for kv in emitted {
            let p = (stable_hash(&kv.key) % n_red as u64) as usize;
            parts[p].push(kv);
        }
        let spill_start = sim.now().secs();
        let d2 = d.clone();
        let spill_to_pfs = d.borrow().job.spill_to_pfs;
        let job_name = d.borrow().job.name.clone();
        let finish_spill = move |sim: &mut Sim, mut phases: Vec<(&'static str, f64)>| {
            phases.push(("spill", sim.now().secs() - spill_start));
            {
                let mut dd = d2.borrow_mut();
                dd.map_outputs[task] = parts;
                dd.reports.push(TaskReport {
                    kind: TaskKind::Map,
                    index: task,
                    node,
                    start_s,
                    end_s: sim.now().secs(),
                    phases,
                });
            }
            release_slot_and_continue(sim, &d2, node);
        };
        if spill_to_pfs {
            // Connector mode: intermediate data crosses the network to the
            // PFS (the "diskless" deployment of the Lustre connectors).
            let spill_path = format!("_spill/{job_name}/m{task:05}");
            pfs::write_new(
                sim,
                &env.topo,
                &env.pfs,
                node,
                spill_path,
                vec![0u8; out_bytes],
                move |sim| finish_spill(sim, phases),
            );
        } else {
            let bytes = sim.cost.lbytes(out_bytes);
            let path = env.topo.path_local_disk(node);
            sim.start_flow(path, bytes, move |sim| finish_spill(sim, phases));
        }
    } else {
        // Map-only: write output straight to HDFS.
        let data = serialize_kvs(&emitted);
        let (dir, name) = {
            let dd = d.borrow();
            (dd.job.output_dir.clone(), format!("part-m-{task:05}"))
        };
        let write_start = sim.now().secs();
        let d2 = d.clone();
        if data.is_empty() {
            let mut dd = d.borrow_mut();
            dd.reports.push(TaskReport {
                kind: TaskKind::Map,
                index: task,
                node,
                start_s,
                end_s: sim.now().secs(),
                phases,
            });
            drop(dd);
            release_slot_and_continue(sim, d, node);
            return;
        }
        let len = data.len() as f64;
        let finish_write = move |sim: &mut Sim, mut phases: Vec<(&'static str, f64)>| {
            phases.push(("write", sim.now().secs() - write_start));
            {
                let mut dd = d2.borrow_mut();
                dd.counters.add(keys::HDFS_WRITE_BYTES, len);
                dd.reports.push(TaskReport {
                    kind: TaskKind::Map,
                    index: task,
                    node,
                    start_s,
                    end_s: sim.now().secs(),
                    phases,
                });
            }
            release_slot_and_continue(sim, &d2, node);
        };
        if d.borrow().job.output_to_pfs {
            pfs::write_new(
                sim,
                &env.topo,
                &env.pfs,
                node,
                format!("{dir}/{name}"),
                data,
                move |sim| finish_write(sim, phases),
            );
        } else {
            hdfs::write_file(
                sim,
                &env.topo,
                &env.hdfs,
                node,
                format!("{dir}/{name}"),
                data,
                move |sim| finish_write(sim, phases),
            )
            .expect("map output path free");
        }
    }
}

fn release_slot_and_continue(sim: &mut Sim, d: &SharedDriver, node: NodeId) {
    {
        let mut dd = d.borrow_mut();
        dd.free_slots[node.0 as usize] += 1;
        dd.maps_done += 1;
    }
    try_schedule(sim, d);
    maybe_finish_maps(sim, d);
}

fn maybe_finish_maps(sim: &mut Sim, d: &SharedDriver) {
    let (all_done, has_reduce) = {
        let dd = d.borrow();
        (dd.maps_done == dd.n_maps, dd.job.reduce_fn.is_some())
    };
    if !all_done {
        return;
    }
    if has_reduce {
        start_reduce_phase(sim, d);
    } else {
        complete(sim, d);
    }
}

fn start_reduce_phase(sim: &mut Sim, d: &SharedDriver) {
    let n_red = d.borrow().job.n_reducers;
    let n_nodes = d.borrow().env.topo.n_compute();
    for r in 0..n_red {
        let node = NodeId((r % n_nodes) as u32);
        run_reduce_task(sim, d, r, node);
    }
}

fn run_reduce_task(sim: &mut Sim, d: &SharedDriver, r: usize, node: NodeId) {
    let startup = sim.cost.task_startup_s;
    let start_s = sim.now().secs();
    {
        d.borrow_mut().counters.add(keys::REDUCE_TASKS, 1.0);
    }
    let d2 = d.clone();
    sim.after(startup, move |sim| {
        // Shuffle: pull partition r from every map.
        let (transfers, env) = {
            let mut dd = d2.borrow_mut();
            let mut t: Vec<(usize, NodeId, Vec<Kv>)> = Vec::new();
            for m in 0..dd.n_maps {
                if dd.map_outputs[m].len() > r {
                    let kvs = std::mem::take(&mut dd.map_outputs[m][r]);
                    if !kvs.is_empty() {
                        t.push((m, dd.map_nodes[m], kvs));
                    }
                }
            }
            (t, dd.env.clone())
        };
        let shuffle_start = sim.now().secs();
        let shuffle_bytes: usize = transfers
            .iter()
            .flat_map(|(_, _, kvs)| kvs.iter())
            .map(|kv| kv.key.len() + kv.value.approx_bytes())
            .sum();
        {
            d2.borrow_mut()
                .counters
                .add(keys::SHUFFLE_BYTES, shuffle_bytes as f64);
        }
        let collected: Rc<RefCell<Vec<Kv>>> = Rc::new(RefCell::new(Vec::new()));
        let n_transfers = transfers.len();
        let remaining = Rc::new(RefCell::new(n_transfers));
        let d3 = d2.clone();
        let env2 = env.clone();
        let after_shuffle = Rc::new(RefCell::new(Some(Box::new(
            move |sim: &mut Sim, kvs: Vec<Kv>| {
                reduce_execute(
                    sim,
                    &d3,
                    r,
                    node,
                    start_s,
                    startup,
                    shuffle_start,
                    kvs,
                    env2,
                );
            },
        )
            as Box<dyn FnOnce(&mut Sim, Vec<Kv>)>)));
        if n_transfers == 0 {
            let cb = after_shuffle.borrow_mut().take().unwrap();
            cb(sim, Vec::new());
            return;
        }
        let spill_to_pfs = d2.borrow().job.spill_to_pfs;
        let job_name = d2.borrow().job.name.clone();
        for (m_idx, src, kvs) in transfers {
            let bytes: usize = kvs
                .iter()
                .map(|kv| kv.key.len() + kv.value.approx_bytes())
                .sum();
            let collected = collected.clone();
            let remaining = remaining.clone();
            let after_shuffle = after_shuffle.clone();
            let arrive = move |sim: &mut Sim| {
                collected.borrow_mut().extend(kvs);
                let mut rem = remaining.borrow_mut();
                *rem -= 1;
                if *rem == 0 {
                    drop(rem);
                    let cb = after_shuffle.borrow_mut().take().unwrap();
                    let kvs = std::mem::take(&mut *collected.borrow_mut());
                    cb(sim, kvs);
                }
            };
            if spill_to_pfs {
                // Fetch the partition back from the PFS spill file. The
                // exact byte range is immaterial to the timing model; the
                // volume is.
                let spill_path = format!("_spill/{job_name}/m{m_idx:05}");
                let have = env.pfs.borrow().len_of(&spill_path).unwrap_or(0);
                let len = bytes.min(have);
                pfs::read_at(
                    sim,
                    &env.topo,
                    &env.pfs,
                    node,
                    &spill_path,
                    0,
                    len,
                    move |sim, _| arrive(sim),
                )
                .expect("spill file present");
            } else {
                let flow_bytes = sim.cost.lbytes(bytes);
                let path = env.topo.path_net(src, node);
                sim.start_flow(path, flow_bytes, arrive);
            }
        }
    });
}

#[allow(clippy::too_many_arguments)]
fn reduce_execute(
    sim: &mut Sim,
    d: &SharedDriver,
    r: usize,
    node: NodeId,
    start_s: f64,
    startup: f64,
    shuffle_start: f64,
    kvs: Vec<Kv>,
    env: MrEnv,
) {
    let shuffle_s = sim.now().secs() - shuffle_start;
    let in_bytes: usize = kvs
        .iter()
        .map(|kv| kv.key.len() + kv.value.approx_bytes())
        .sum();
    // Sort/merge (real grouping via BTreeMap).
    let sort_s = sim.cost.lbytes(in_bytes) * sim.cost.sort_per_byte;
    let mut groups: BTreeMap<String, Vec<Payload>> = BTreeMap::new();
    for kv in kvs {
        groups.entry(kv.key).or_default().push(kv.value);
    }
    let reduce_fn = d.borrow().job.reduce_fn.clone().expect("reduce fn");
    let mut ctx = TaskCtx::new(sim.cost.clone());
    for (key, values) in groups {
        if let Err(e) = (reduce_fn)(&key, values, &mut ctx) {
            fail_job(sim, d, e);
            return;
        }
    }
    let compute = ctx.total_charge() + sort_s;
    let mut phases = vec![
        ("startup", startup),
        ("shuffle", shuffle_s),
        ("sort", sort_s),
    ];
    for (p, s) in &ctx.charges {
        phases.push((p, *s));
    }
    let records = ctx.records;
    let emitted = ctx.emitted;
    let d2 = d.clone();
    sim.after(compute, move |sim| {
        {
            d2.borrow_mut()
                .counters
                .add(keys::RECORDS_EMITTED, records as f64);
        }
        let data = serialize_kvs(&emitted);
        let (dir,) = {
            let dd = d2.borrow();
            (dd.job.output_dir.clone(),)
        };
        let finish = {
            let d3 = d2.clone();
            move |sim: &mut Sim, mut phases: Vec<(&'static str, f64)>, write_start: f64| {
                phases.push(("write", sim.now().secs() - write_start));
                {
                    let mut dd = d3.borrow_mut();
                    dd.reports.push(TaskReport {
                        kind: TaskKind::Reduce,
                        index: r,
                        node,
                        start_s,
                        end_s: sim.now().secs(),
                        phases,
                    });
                    dd.reduces_done += 1;
                }
                let all = {
                    let dd = d3.borrow();
                    dd.reduces_done == dd.job.n_reducers
                };
                if all {
                    complete(sim, &d3);
                }
            }
        };
        let write_start = sim.now().secs();
        if data.is_empty() {
            finish(sim, phases, write_start);
            return;
        }
        let len = data.len() as f64;
        {
            d2.borrow_mut().counters.add(keys::HDFS_WRITE_BYTES, len);
        }
        if d2.borrow().job.output_to_pfs {
            pfs::write_new(
                sim,
                &env.topo,
                &env.pfs,
                node,
                format!("{dir}/part-r-{r:05}"),
                data,
                move |sim| finish(sim, phases, write_start),
            );
        } else {
            hdfs::write_file(
                sim,
                &env.topo,
                &env.hdfs,
                node,
                format!("{dir}/part-r-{r:05}"),
                data,
                move |sim| finish(sim, phases, write_start),
            )
            .expect("reduce output path free");
        }
    });
}

fn serialize_kvs(kvs: &[Kv]) -> Vec<u8> {
    let mut out = Vec::new();
    for kv in kvs {
        out.extend_from_slice(kv.key.as_bytes());
        out.push(b'\t');
        match &kv.value {
            Payload::Bytes(b) => out.extend_from_slice(b),
            Payload::Frame(f) => {
                // Frames persist as CSV (what rhdfs writes back).
                let mut text = String::new();
                for (i, n) in f.names().iter().enumerate() {
                    if i > 0 {
                        text.push(',');
                    }
                    text.push_str(n);
                }
                text.push('\n');
                for row in 0..f.n_rows() {
                    for c in 0..f.n_cols() {
                        if c > 0 {
                            text.push(',');
                        }
                        text.push_str(&f.column_at(c).value(row).to_string());
                    }
                    text.push('\n');
                }
                out.extend_from_slice(text.as_bytes());
            }
        }
        out.push(b'\n');
    }
    out
}

fn fail_job(sim: &mut Sim, d: &SharedDriver, e: MrError) {
    let cb = {
        let mut dd = d.borrow_mut();
        if dd.failed.is_none() {
            dd.failed = Some(e.clone());
        }
        dd.done_cb.take()
    };
    if let Some(cb) = cb {
        cb(sim, Err(e));
    }
}

fn complete(sim: &mut Sim, d: &SharedDriver) {
    let (result, cb) = {
        let mut dd = d.borrow_mut();
        let mut tasks = std::mem::take(&mut dd.reports);
        tasks.sort_by_key(|t| (t.kind == TaskKind::Reduce, t.index));
        let result = JobResult {
            name: dd.job.name.clone(),
            start_s: dd.start_s,
            end_s: sim.now().secs(),
            tasks,
            counters: dd.counters.clone(),
        };
        (result, dd.done_cb.take())
    };
    if let Some(cb) = cb {
        cb(sim, Ok(result));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{hdfs_file_splits, InMemoryFetcher, InputSplit};
    use pfs::PfsConfig;
    use simnet::{ClusterSpec, CostModel};

    fn small_cluster(nodes: usize, slots: usize) -> Cluster {
        let spec = ClusterSpec {
            compute_nodes: nodes,
            storage_nodes: 1,
            osts: 2,
            slots_per_node: slots,
            ..ClusterSpec::default()
        };
        let pfs_cfg = PfsConfig {
            n_osts: 2,
            ..PfsConfig::default()
        };
        Cluster::new(spec, pfs_cfg, 1 << 16, 1, CostModel::default())
    }

    fn mem_splits(n: usize, bytes: usize) -> Vec<InputSplit> {
        (0..n)
            .map(|i| InputSplit {
                length: bytes as u64,
                locations: vec![],
                fetcher: Rc::new(InMemoryFetcher {
                    data: vec![i as u8; bytes],
                }),
            })
            .collect()
    }

    fn word_count_job(splits: Vec<InputSplit>, reducers: usize) -> Job {
        Job {
            name: "wordcount".into(),
            spill_to_pfs: false,
            output_to_pfs: false,
            splits,
            map_fn: Rc::new(|input, ctx| {
                let TaskInput::Bytes(b) = input else {
                    return Err(MrError("expected bytes".into()));
                };
                // Count byte values (stand-in for words).
                let mut counts: BTreeMap<u8, usize> = BTreeMap::new();
                for &x in &b {
                    *counts.entry(x).or_default() += 1;
                }
                ctx.charge("scan", ctx.cost().scan_per_byte * b.len() as f64);
                for (k, v) in counts {
                    ctx.emit(format!("w{k}"), Payload::Bytes(v.to_string().into_bytes()));
                }
                Ok(())
            }),
            reduce_fn: Some(Rc::new(|key, values, ctx| {
                let total: usize = values
                    .iter()
                    .map(|v| match v {
                        Payload::Bytes(b) => String::from_utf8_lossy(b).parse::<usize>().unwrap(),
                        _ => 0,
                    })
                    .sum();
                ctx.emit(key, Payload::Bytes(total.to_string().into_bytes()));
                Ok(())
            })),
            n_reducers: reducers,
            output_dir: "out".into(),
        }
    }

    #[test]
    fn map_reduce_end_to_end() {
        let mut c = small_cluster(2, 2);
        let job = word_count_job(mem_splits(4, 100), 2);
        let r = run_job(&mut c, job).unwrap();
        assert_eq!(r.counters.get(keys::MAP_TASKS), 4.0);
        assert_eq!(r.counters.get(keys::REDUCE_TASKS), 2.0);
        assert!(r.elapsed() > 0.0);
        // Each split is 100 identical bytes → each map emits one record.
        assert_eq!(r.counters.get(keys::RECORDS_EMITTED), 8.0);
        // Output files exist on HDFS.
        let h = c.hdfs.borrow();
        let files = h.namenode.list_files_recursive("out").unwrap();
        assert!(!files.is_empty());
        let total: u64 = files.iter().map(|f| f.len).sum();
        assert!(total > 0);
        // 4 maps + 2 reduces reported, maps first.
        assert_eq!(r.tasks.len(), 6);
        assert_eq!(r.tasks[0].kind, TaskKind::Map);
        assert_eq!(r.tasks[5].kind, TaskKind::Reduce);
    }

    #[test]
    fn reduce_output_values_are_correct() {
        // All splits carry byte value 7 → one key, count = total bytes.
        let mut c = small_cluster(2, 2);
        let splits: Vec<InputSplit> = (0..3)
            .map(|_| InputSplit {
                length: 50,
                locations: vec![],
                fetcher: Rc::new(InMemoryFetcher { data: vec![7; 50] }),
            })
            .collect();
        let job = word_count_job(splits, 1);
        run_job(&mut c, job).unwrap();
        let h = c.hdfs.borrow();
        let files = h.namenode.list_files_recursive("out").unwrap();
        assert_eq!(files.len(), 1);
        // Read back through datanodes (single block).
        let blocks = h.namenode.blocks(&files[0].path).unwrap();
        let data = h
            .datanodes
            .get(blocks[0].locations()[0], blocks[0].id)
            .unwrap();
        let text = String::from_utf8(data.as_ref().clone()).unwrap();
        assert_eq!(text.trim(), "w7\t150");
    }

    #[test]
    fn map_only_job_writes_part_m_files() {
        let mut c = small_cluster(2, 2);
        let mut job = word_count_job(mem_splits(3, 10), 1);
        job.reduce_fn = None;
        let r = run_job(&mut c, job).unwrap();
        assert_eq!(r.counters.get(keys::REDUCE_TASKS), 0.0);
        let h = c.hdfs.borrow();
        let files = h.namenode.list_files_recursive("out").unwrap();
        assert_eq!(files.len(), 3);
        assert!(files[0].path.contains("part-m-"));
    }

    #[test]
    fn slots_limit_parallelism() {
        // 8 equal tasks, 1 node: with 1 slot the job takes ~8x the span of
        // a single task; with 8 slots roughly 1x (plus contention).
        let elapsed = |slots: usize| {
            let mut c = small_cluster(1, slots);
            let job = word_count_job(mem_splits(8, 1000), 1);
            run_job(&mut c, job).unwrap().elapsed()
        };
        let serial = elapsed(1);
        let parallel = elapsed(8);
        assert!(
            serial > 4.0 * parallel,
            "slots not limiting: serial={serial}, parallel={parallel}"
        );
    }

    #[test]
    fn locality_preferred_when_available() {
        let mut c = small_cluster(2, 1);
        // Stage a real HDFS file: 2 blocks land on different nodes.
        hdfs::write_file(
            &mut c.sim,
            &c.topo,
            &c.hdfs,
            NodeId(0),
            "in",
            vec![1u8; (1 << 16) + 100],
            |_| {},
        )
        .unwrap();
        c.run();
        let env = c.env();
        let splits = hdfs_file_splits(&env, "in");
        assert_eq!(splits.len(), 2);
        let job = word_count_job(splits, 1);
        let r = run_job(&mut c, job).unwrap();
        // Both blocks were written from node 0 → both local there; at least
        // one map must be data-local.
        assert!(r.counters.get(keys::LOCAL_MAPS) >= 1.0);
        for t in r.tasks.iter().filter(|t| t.kind == TaskKind::Map) {
            assert!(t.phase("read") > 0.0, "read phase recorded");
            assert!(t.phase("startup") > 0.0);
        }
    }

    #[test]
    fn failing_map_fails_job() {
        let mut c = small_cluster(1, 1);
        let job = Job {
            name: "boom".into(),
            spill_to_pfs: false,
            output_to_pfs: false,
            splits: mem_splits(2, 10),
            map_fn: Rc::new(|_, _| Err(MrError("kaboom".into()))),
            reduce_fn: None,
            n_reducers: 1,
            output_dir: "out".into(),
        };
        let r = run_job(&mut c, job);
        assert_eq!(r.unwrap_err(), MrError("kaboom".into()));
    }

    #[test]
    fn empty_job_completes() {
        let mut c = small_cluster(1, 1);
        let job = word_count_job(Vec::new(), 1);
        let r = run_job(&mut c, job).unwrap();
        assert_eq!(r.counters.get(keys::MAP_TASKS), 0.0);
        // Reduce still runs (Hadoop would too) and writes nothing.
        assert_eq!(r.counters.get(keys::REDUCE_TASKS), 1.0);
    }

    #[test]
    fn non_local_tasks_spread_across_nodes() {
        // Location-free splits must not pile onto node 0: with 4 nodes and
        // 4 equal tasks, every node runs exactly one.
        let mut c = small_cluster(4, 8);
        let mut nodes_used = std::collections::HashSet::new();
        let job = word_count_job(mem_splits(4, 100), 1);
        let r = run_job(&mut c, job).unwrap();
        for t in r.tasks.iter().filter(|t| t.kind == TaskKind::Map) {
            nodes_used.insert(t.node);
        }
        assert_eq!(nodes_used.len(), 4, "tasks not spread: {nodes_used:?}");
    }

    #[test]
    fn deterministic_execution() {
        let run = || {
            let mut c = small_cluster(2, 2);
            let job = word_count_job(mem_splits(6, 500), 2);
            let r = run_job(&mut c, job).unwrap();
            (r.elapsed(), r.counters.get(keys::SHUFFLE_BYTES))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn charges_appear_in_task_phases() {
        let mut c = small_cluster(1, 1);
        let job = Job {
            name: "charge".into(),
            spill_to_pfs: false,
            output_to_pfs: false,
            splits: mem_splits(1, 10),
            map_fn: Rc::new(|_, ctx| {
                ctx.charge("plot", 2.0);
                ctx.charge("plot", 1.0);
                ctx.charge("convert", 0.5);
                Ok(())
            }),
            reduce_fn: None,
            n_reducers: 1,
            output_dir: "out".into(),
        };
        let r = run_job(&mut c, job).unwrap();
        let t = &r.tasks[0];
        assert!((t.phase("plot") - 3.0).abs() < 1e-9);
        assert!((t.phase("convert") - 0.5).abs() < 1e-9);
        // Wall time covers startup + compute.
        assert!(t.duration() >= 3.5);
        assert!((r.mean_phase(TaskKind::Map, "plot") - 3.0).abs() < 1e-9);
    }
}
