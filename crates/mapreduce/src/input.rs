//! Input splits and fetchers — the `InputFormat`/`RecordReader` layer.
//!
//! A split names *where* its data lives (for locality scheduling) and
//! carries a [`SplitFetcher`] that, inside the task, performs the timed
//! transfer and hands back a [`TaskInput`]. The engine ships fetchers for
//! HDFS blocks and flat PFS ranges (the PortHadoop mapping); `scidp` adds
//! the scientific-slab fetcher on top of its Data Mapper.

use std::rc::Rc;

use simnet::{NodeId, Sim};

use crate::cluster::MrEnv;
use crate::job::{MrError, Payload};

/// Data delivered to a map function.
#[derive(Debug, Clone)]
pub enum TaskInput {
    /// Raw bytes (a text block, an HDFS block...).
    Bytes(Vec<u8>),
    /// A decoded scientific array (SciDP's PFS Reader output).
    Array(scifmt::Array),
    /// An already-built data frame.
    Frame(rframe::DataFrame),
    /// Shuffled key/value pairs delivered to a post-shuffle DAG stage.
    /// Each record is `(source tag, key, value)`; the tag tells joins
    /// which parent dataset the pair came from.
    Pairs(Vec<(u8, String, Payload)>),
}

impl TaskInput {
    /// Approximate real size in bytes (scheduling/accounting).
    pub fn approx_bytes(&self) -> usize {
        match self {
            TaskInput::Bytes(b) => b.len(),
            TaskInput::Array(a) => a.len() * a.dtype().size(),
            TaskInput::Frame(f) => f.approx_bytes(),
            TaskInput::Pairs(ps) => ps
                .iter()
                .map(|(_, k, v)| 1 + k.len() + v.approx_bytes())
                .sum(),
        }
    }
}

/// Why a streaming fetch could not be opened for a split. The driver falls
/// back to the one-shot [`SplitFetcher::fetch`] path and records the reason
/// under [`crate::counters::keys::STREAM_FALLBACKS`] plus the per-reason key,
/// so a job that silently loses read/compute overlap is visible in counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamFallback {
    /// The split's fetcher has no streaming implementation.
    Unsupported,
    /// Predicate pushdown pre-filters chunks into a frame, which the
    /// chunk-granular streaming pipeline cannot assemble piecewise.
    Pushdown,
}

impl StreamFallback {
    /// Counter key naming this fallback reason.
    pub fn counter_key(&self) -> &'static str {
        use crate::counters::keys;
        match self {
            StreamFallback::Unsupported => keys::STREAM_FALLBACK_UNSUPPORTED,
            StreamFallback::Pushdown => keys::STREAM_FALLBACK_PUSHDOWN,
        }
    }
}

/// Result of fetching a split: the data plus any compute charges the fetch
/// implies beyond the transfer itself (e.g. decompression).
pub struct FetchResult {
    pub input: TaskInput,
    /// `(phase name, virtual seconds)` charged after the transfer.
    pub charges: Vec<(&'static str, f64)>,
    /// `(counter key, amount)` added to the job counters (e.g. chunk-cache
    /// hits/misses, real codec seconds — see [`crate::counters::keys`]).
    pub counters: Vec<(&'static str, f64)>,
    /// Opaque split metadata forwarded to the map function via
    /// [`crate::TaskCtx::input_tag`] (e.g. which variable slab this is).
    pub tag: String,
}

impl FetchResult {
    /// A result with no extra charges, counters or tag.
    pub fn plain(input: TaskInput) -> FetchResult {
        FetchResult {
            input,
            charges: Vec::new(),
            counters: Vec::new(),
            tag: String::new(),
        }
    }
}

/// Completion callback of a [`SplitFetcher::fetch`]. An `Err` marks the
/// *attempt* as failed — the driver releases the slot and retries the task;
/// fetchers must never panic on I/O errors.
pub type FetchDone = Box<dyn FnOnce(&mut Sim, Result<FetchResult, MrError>)>;

/// One chunk-granular unit of a streaming fetch (see [`PieceStream`]).
///
/// A piece carries no payload bytes itself — the stream keeps the data
/// internally and assembles the full [`FetchResult`] in
/// [`PieceStream::finish`]. What the driver needs per piece is its weight
/// (to apportion map compute across the overlap timeline) and the charges
/// and counter deltas its transfer produced.
pub struct FetchPiece {
    /// Delivered weight of this piece in bytes (decompressed for codec
    /// fetchers). The driver attributes `bytes / Σ bytes` of the split-wide
    /// map compute to this piece when pipelining reads against compute.
    pub bytes: u64,
    /// `(phase name, virtual seconds)` of compute this piece's arrival
    /// implies (e.g. decompressing this one chunk).
    pub charges: Vec<(&'static str, f64)>,
    /// `(counter key, amount)` deltas (cache misses, codec seconds,
    /// integrity events) — attempt-local, exact under retries.
    pub counters: Vec<(&'static str, f64)>,
}

/// Completion callback of one [`PieceStream::fetch_piece`]. An `Err` kills
/// the attempt exactly like a batch fetch error.
pub type PieceDone = Box<dyn FnOnce(&mut Sim, Result<FetchPiece, MrError>)>;

/// A streaming view of one split's fetch: the driver pulls pieces in index
/// order through a bounded prefetch window, overlapping in-flight reads
/// with per-piece map compute, then calls [`PieceStream::finish`] once all
/// pieces have arrived to assemble the same [`FetchResult`] the batch path
/// would have produced (byte-identical by construction).
pub trait PieceStream {
    /// Number of pieces this stream will deliver (fixed at open time).
    fn n_pieces(&self) -> usize;

    /// Start the timed transfer of piece `idx`; call `done` exactly once.
    /// The driver issues pieces in index order, never more than the
    /// prefetch depth in flight at once.
    fn fetch_piece(&self, env: &MrEnv, sim: &mut Sim, node: NodeId, idx: usize, done: PieceDone);

    /// Assemble the final result after every piece has arrived. Charges and
    /// counters already reported on pieces must not be repeated here.
    fn finish(&self) -> Result<FetchResult, MrError>;
}

/// Fetches one split's data inside a running task.
pub trait SplitFetcher {
    /// Start the (timed) fetch on `node`; call `done` exactly once with the
    /// result (or the error that killed this attempt).
    fn fetch(&self, env: &MrEnv, sim: &mut Sim, node: NodeId, done: FetchDone);

    /// Open a streaming view of this split's fetch, or the reason it cannot
    /// stream (the default: no streaming support). On `Err` — or when the
    /// job disables streaming — the driver falls back to
    /// [`SplitFetcher::fetch`] and counts the fallback reason.
    fn open_stream(
        &self,
        _env: &MrEnv,
        _sim: &mut Sim,
        _node: NodeId,
    ) -> Result<Box<dyn PieceStream>, StreamFallback> {
        Err(StreamFallback::Unsupported)
    }

    /// Chunk keys this split would read from the cluster chunk-cache tier
    /// (`(content file key, chunk offset)` pairs — see
    /// [`simnet::ClusterCache`]). The scheduler uses them for *dynamic*
    /// cache locality: a pending map whose chunks are resident on a free
    /// node is preferred there over static split locality. The default —
    /// no hints — opts a fetcher out of cache-aware placement entirely.
    fn cache_hints(&self) -> Vec<simnet::ChunkKey> {
        Vec::new()
    }

    /// Human-readable description for traces.
    fn describe(&self) -> String;
}

/// Wrap a stream so its assembled [`FetchResult`] carries `tag` — for
/// fetcher wrappers that re-tag their inner fetcher's result.
pub fn retag_stream(inner: Box<dyn PieceStream>, tag: String) -> Box<dyn PieceStream> {
    struct Retag {
        inner: Box<dyn PieceStream>,
        tag: String,
    }
    impl PieceStream for Retag {
        fn n_pieces(&self) -> usize {
            self.inner.n_pieces()
        }
        fn fetch_piece(
            &self,
            env: &MrEnv,
            sim: &mut Sim,
            node: NodeId,
            idx: usize,
            done: PieceDone,
        ) {
            self.inner.fetch_piece(env, sim, node, idx, done)
        }
        fn finish(&self) -> Result<FetchResult, MrError> {
            let mut fr = self.inner.finish()?;
            fr.tag = self.tag.clone();
            Ok(fr)
        }
    }
    Box::new(Retag { inner, tag })
}

/// One unit of map work.
#[derive(Clone)]
pub struct InputSplit {
    /// Real bytes this split covers (scheduling weight, counters).
    pub length: u64,
    /// Nodes holding the data (empty for PFS-backed splits — the paper's
    /// dummy blocks carry no locations).
    pub locations: Vec<NodeId>,
    pub fetcher: Rc<dyn SplitFetcher>,
}

impl std::fmt::Debug for InputSplit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InputSplit")
            .field("length", &self.length)
            .field("locations", &self.locations)
            .field("fetcher", &self.fetcher.describe())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// HDFS block fetcher
// ---------------------------------------------------------------------------

/// Counter deltas for the integrity and hedge events *one* block read
/// produced (only keys with events appear, keeping fault-free fetch
/// results unchanged). Takes the per-read [`hdfs::ReadEvents`] rather than
/// a delta of the cluster-wide stats: concurrent fetches interleave their
/// updates to the shared stats, so a snapshot delta around one read would
/// absorb every other read completing in the window and double-count.
pub fn read_event_counters(ev: hdfs::ReadEvents) -> Vec<(&'static str, f64)> {
    use crate::counters::keys;
    let mut out = Vec::new();
    if ev.verified_bytes > 0 {
        out.push((keys::CHECKSUM_VERIFIED_BYTES, ev.verified_bytes as f64));
    }
    if ev.detected > 0 {
        out.push((keys::CORRUPTION_DETECTED, ev.detected as f64));
    }
    if ev.repaired > 0 {
        out.push((keys::CORRUPTION_REPAIRED, ev.repaired as f64));
    }
    if ev.hedged_reads > 0 {
        out.push((keys::HEDGED_READS, ev.hedged_reads as f64));
    }
    if ev.hedged_read_wins > 0 {
        out.push((keys::HEDGED_READ_WINS, ev.hedged_read_wins as f64));
    }
    out
}

/// Reads one real HDFS block (the vanilla Hadoop record reader).
pub struct HdfsBlockFetcher {
    pub path: String,
    pub block_index: usize,
}

impl SplitFetcher for HdfsBlockFetcher {
    fn fetch(&self, env: &MrEnv, sim: &mut Sim, node: NodeId, done: FetchDone) {
        // HDFS block reads address blocks, not paths; count the read (and
        // test it against the fault plan) under the file path here.
        match sim.faults.take_read_outcome(&self.path) {
            simnet::ReadOutcome::Fail { nth } => {
                let e = MrError::msg(format!(
                    "injected I/O error on read #{nth} of {}",
                    self.path
                ));
                sim.after(0.0, move |sim| done(sim, Err(e)));
                return;
            }
            simnet::ReadOutcome::Hang { .. } => {
                // The read never completes — drop the callback so only the
                // driver's hang deadline can recover the attempt.
                drop(done);
                return;
            }
            _ => {}
        }
        let block = {
            let h = env.hdfs.borrow();
            match h.namenode.blocks(&self.path) {
                Ok(blocks) => match blocks.get(self.block_index) {
                    Some(b) => b.clone(),
                    None => {
                        drop(h);
                        let e = MrError::msg(format!(
                            "block #{} of {} out of range",
                            self.block_index, self.path
                        ));
                        sim.after(0.0, move |sim| done(sim, Err(e)));
                        return;
                    }
                },
                Err(e) => {
                    drop(h);
                    let e = MrError::msg(format!("hdfs: {e}"));
                    sim.after(0.0, move |sim| done(sim, Err(e)));
                    return;
                }
            }
        };
        // `read_block` consumes its callback even when it fails
        // synchronously, so route completion through a take-once cell.
        // Integrity accounting: the read reports its own events, which land
        // in attempt-local counters — exact under concurrent fetches (a
        // cluster-wide stats delta would absorb overlapping reads) and under
        // retries (a failed attempt's events are dropped with it).
        let done_cell = std::rc::Rc::new(std::cell::RefCell::new(Some(done)));
        let dc = done_cell.clone();
        let res = hdfs::read_block_with_events(
            sim,
            &env.topo,
            &env.hdfs,
            node,
            &block,
            move |sim, data, ev| {
                if let Some(d) = dc.borrow_mut().take() {
                    let mut fr = FetchResult::plain(TaskInput::Bytes(data.as_ref().clone()));
                    fr.counters = read_event_counters(ev);
                    d(sim, Ok(fr));
                }
            },
        );
        if let Err(e) = res {
            if let Some(d) = done_cell.borrow_mut().take() {
                let e = MrError::msg(format!("hdfs: {e} ({})", self.path));
                sim.after(0.0, move |sim| d(sim, Err(e)));
            }
        }
    }

    fn describe(&self) -> String {
        format!("hdfs://{}#{}", self.path, self.block_index)
    }
}

/// Build one split per block of an HDFS file (`FileInputFormat` on HDFS).
///
/// A missing or non-file input path is reported as a typed error — the
/// Hadoop `InvalidInputException` analogue at job-setup time.
pub fn hdfs_file_splits(env: &MrEnv, path: &str) -> Result<Vec<InputSplit>, MrError> {
    let hdfs = env.hdfs.borrow();
    let blocks = hdfs
        .namenode
        .blocks(path)
        .map_err(|e| MrError::msg(format!("hdfs_file_splits({path}): {e}")))?;
    Ok(blocks
        .iter()
        .enumerate()
        .map(|(i, b)| InputSplit {
            length: b.len,
            locations: b.locations().to_vec(),
            fetcher: Rc::new(HdfsBlockFetcher {
                path: path.to_string(),
                block_index: i,
            }),
        })
        .collect())
}

// ---------------------------------------------------------------------------
// Flat PFS range fetcher (PortHadoop-style virtual block)
// ---------------------------------------------------------------------------

/// Reads a byte range of a PFS file directly into the task — the
/// PortHadoop dynamic PFS reader. `sequential_chunks` models the read
/// granularity: 1 = one whole-block I/O request (SciDP's optimization,
/// §III-A.3); `k` > 1 = `k` back-to-back smaller requests (original Hadoop
/// reads 64 KB at a time).
pub struct FlatPfsFetcher {
    pub pfs_path: String,
    pub offset: u64,
    pub len: u64,
    pub sequential_chunks: usize,
}

impl FlatPfsFetcher {
    /// The byte ranges one fetch covers, in read-issue order (shared by the
    /// batch and streaming paths so both consume fault-plan entries in the
    /// same per-path order).
    fn ranges(&self) -> Vec<(u64, u64)> {
        let k = self.sequential_chunks.max(1) as u64;
        let chunk = self.len.div_ceil(k);
        let mut ranges = Vec::new();
        let mut off = self.offset;
        let end = self.offset + self.len;
        while off < end {
            let l = chunk.min(end - off);
            ranges.push((off, l));
            off += l;
        }
        if ranges.is_empty() {
            ranges.push((self.offset, 0));
        }
        ranges
    }

    #[allow(clippy::too_many_arguments)]
    fn read_chunks(
        env: MrEnv,
        sim: &mut Sim,
        node: NodeId,
        path: String,
        ranges: Vec<(u64, u64)>,
        idx: usize,
        mut acc: Vec<u8>,
        done: FetchDone,
    ) {
        if idx >= ranges.len() {
            done(sim, Ok(FetchResult::plain(TaskInput::Bytes(acc))));
            return;
        }
        let (off, len) = ranges[idx];
        let env2 = env.clone();
        let path2 = path.clone();
        let done_cell = std::rc::Rc::new(std::cell::RefCell::new(Some(done)));
        let dc = done_cell.clone();
        let res = pfs::read_at(
            sim,
            &env.topo,
            &env.pfs,
            node,
            &path,
            off as usize,
            len as usize,
            move |sim, bytes| {
                let Some(done) = dc.borrow_mut().take() else {
                    return;
                };
                acc.extend_from_slice(&bytes);
                FlatPfsFetcher::read_chunks(env2, sim, node, path2, ranges, idx + 1, acc, done);
            },
        );
        if let Err(e) = res {
            if let Some(done) = done_cell.borrow_mut().take() {
                let e = MrError::msg(format!("pfs: {e}"));
                sim.after(0.0, move |sim| done(sim, Err(e)));
            }
        }
    }
}

/// Streaming view of a [`FlatPfsFetcher`]: one piece per read request,
/// parts re-assembled in range order at [`PieceStream::finish`] so the
/// result is byte-identical to the batch path.
struct FlatPieceStream {
    path: String,
    ranges: Vec<(u64, u64)>,
    parts: Rc<std::cell::RefCell<Vec<Option<Vec<u8>>>>>,
}

impl PieceStream for FlatPieceStream {
    fn n_pieces(&self) -> usize {
        self.ranges.len()
    }

    fn fetch_piece(&self, env: &MrEnv, sim: &mut Sim, node: NodeId, idx: usize, done: PieceDone) {
        let (off, len) = self.ranges[idx];
        let slots = self.parts.clone();
        let done_cell = std::rc::Rc::new(std::cell::RefCell::new(Some(done)));
        let dc = done_cell.clone();
        let res = pfs::read_at(
            sim,
            &env.topo,
            &env.pfs,
            node,
            &self.path,
            off as usize,
            len as usize,
            move |sim, bytes| {
                let Some(done) = dc.borrow_mut().take() else {
                    return;
                };
                slots.borrow_mut()[idx] = Some(bytes.to_vec());
                done(
                    sim,
                    Ok(FetchPiece {
                        bytes: len,
                        charges: Vec::new(),
                        counters: Vec::new(),
                    }),
                );
            },
        );
        if let Err(e) = res {
            if let Some(done) = done_cell.borrow_mut().take() {
                let e = MrError::msg(format!("pfs: {e}"));
                sim.after(0.0, move |sim| done(sim, Err(e)));
            }
        }
    }

    fn finish(&self) -> Result<FetchResult, MrError> {
        let mut acc = Vec::new();
        for (i, p) in self.parts.borrow_mut().iter_mut().enumerate() {
            match p.take() {
                Some(bytes) => acc.extend_from_slice(&bytes),
                None => return Err(MrError::msg(format!("stream piece {i} missing at finish"))),
            }
        }
        Ok(FetchResult::plain(TaskInput::Bytes(acc)))
    }
}

impl SplitFetcher for FlatPfsFetcher {
    fn fetch(&self, env: &MrEnv, sim: &mut Sim, node: NodeId, done: FetchDone) {
        FlatPfsFetcher::read_chunks(
            env.clone(),
            sim,
            node,
            self.pfs_path.clone(),
            self.ranges(),
            0,
            Vec::new(),
            done,
        );
    }

    fn open_stream(
        &self,
        _env: &MrEnv,
        _sim: &mut Sim,
        _node: NodeId,
    ) -> Result<Box<dyn PieceStream>, StreamFallback> {
        let ranges = self.ranges();
        let parts = Rc::new(std::cell::RefCell::new(vec![None; ranges.len()]));
        Ok(Box::new(FlatPieceStream {
            path: self.pfs_path.clone(),
            ranges,
            parts,
        }))
    }

    fn describe(&self) -> String {
        format!(
            "pfs://{}@{}+{} ({} reqs)",
            self.pfs_path, self.offset, self.len, self.sequential_chunks
        )
    }
}

/// A fetcher that delivers pre-staged data with no I/O (tests, in-memory
/// workloads).
pub struct InMemoryFetcher {
    pub data: Vec<u8>,
}

impl SplitFetcher for InMemoryFetcher {
    fn fetch(&self, _env: &MrEnv, sim: &mut Sim, _node: NodeId, done: FetchDone) {
        let data = self.data.clone();
        sim.after(0.0, move |sim| {
            done(sim, Ok(FetchResult::plain(TaskInput::Bytes(data))))
        });
    }

    fn describe(&self) -> String {
        format!("mem({} bytes)", self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_input_sizes() {
        assert_eq!(TaskInput::Bytes(vec![0; 10]).approx_bytes(), 10);
        let a = scifmt::Array::zeros(scifmt::DType::F32, vec![3, 4]);
        assert_eq!(TaskInput::Array(a).approx_bytes(), 48);
    }

    #[test]
    fn split_debug_includes_fetcher() {
        let s = InputSplit {
            length: 5,
            locations: vec![],
            fetcher: Rc::new(InMemoryFetcher { data: vec![1; 5] }),
        };
        let d = format!("{s:?}");
        assert!(d.contains("mem(5 bytes)"), "{d}");
    }
}
