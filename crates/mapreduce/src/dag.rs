//! Multi-stage DAG scheduler with shuffle-aware stages and lineage
//! recovery.
//!
//! A [`crate::dataset::Dataset`] plan is cut into stages at shuffle
//! boundaries: narrow operators (`map`, `filter`) fuse into their upstream
//! stage's task function, each wide operator starts a new stage whose tasks
//! group the shuffled pairs by key. Every stage runs as one map-only
//! engine [`Job`] — inheriting the attempt/retry/blacklist/speculation
//! machinery unchanged — with a [`ShuffleSink`] that hash-partitions the
//! stage's emitted pairs and registers them in a shared [`ShuffleStore`]
//! per `(shuffle, map partition)` at task commit.
//!
//! Lineage recovery: a node kill invalidates every output the dead node
//! held. Before each step the driver walks the stages in topological order
//! and resubmits the *first* stage that is both missing outputs and still
//! needed by an incomplete descendant — so a lost partition re-runs only
//! its upstream chain, at partition granularity, never the whole DAG.
//! Counters: `stages_run` (stage jobs submitted), `lineage_recomputes`
//! (tasks re-executed for a previously-committed partition),
//! `shuffle_partitions_lost` (outputs dropped by node deaths).
//!
//! A `Dataset` consumed by two downstream operators is compiled (and
//! executed) once per consumer — plans are trees, not general graphs.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use simnet::{NodeId, Sim};

use crate::cluster::{Cluster, MrEnv};
use crate::counters::{keys, Counters};
use crate::dataset::{Dataset, GroupFn, PairFilterFn, PairMapFn, PlanNode, RecordReadFn};
use crate::input::{FetchDone, FetchResult, InputSplit, SplitFetcher, TaskInput};
use crate::job::{
    serialize_kvs, submit_job_env, FtConfig, Job, Kv, MapFn, MrError, Payload, StreamConfig,
    TaskCtx,
};

// ---------------------------------------------------------------------------
// Shuffle registry
// ---------------------------------------------------------------------------

/// One registered map output: where it lives and its per-downstream-task
/// partitions.
struct StoredOutput {
    node: NodeId,
    parts: Vec<Vec<Kv>>,
}

/// Registry of shuffle (and final-result) outputs, shared between the DAG
/// driver, the per-stage sink jobs, and the shuffle fetchers.
#[derive(Default)]
pub struct ShuffleStore {
    /// shuffle id → producing map partition id → output.
    outputs: BTreeMap<u64, BTreeMap<usize, StoredOutput>>,
    /// shuffle id → number of map outputs a complete shuffle has.
    expected: BTreeMap<u64, usize>,
    /// `(shuffle, map partition)` holes hit by fetchers since the last
    /// drain — non-empty after a stage failure means "lineage, not bug".
    missing: Vec<(u64, usize)>,
    /// Outputs invalidated because their holder was unreachable (hung or
    /// partitioned away) when a fetch tried to pull them; drained into
    /// `shuffle_partitions_lost` by the DAG driver.
    stalled_lost: u64,
}

pub(crate) type SharedShuffleStore = Rc<RefCell<ShuffleStore>>;

impl ShuffleStore {
    fn set_expected(&mut self, shuffle: u64, n: usize) {
        self.expected.insert(shuffle, n);
    }

    fn n_expected(&self, shuffle: u64) -> usize {
        self.expected.get(&shuffle).copied().unwrap_or(0)
    }

    /// Register one committed map output. First-commit-wins upstream means
    /// this is called at most once per live (shuffle, partition) — a
    /// recompute after invalidation simply fills the hole again.
    pub(crate) fn register(
        &mut self,
        shuffle: u64,
        partition: usize,
        node: NodeId,
        parts: Vec<Vec<Kv>>,
    ) {
        self.outputs
            .entry(shuffle)
            .or_default()
            .insert(partition, StoredOutput { node, parts });
    }

    fn get(&self, shuffle: u64, partition: usize) -> Option<&StoredOutput> {
        self.outputs.get(&shuffle)?.get(&partition)
    }

    fn has(&self, shuffle: u64, partition: usize) -> bool {
        self.get(shuffle, partition).is_some()
    }

    /// Drop every output held by a dead node; returns how many were lost.
    fn invalidate_node(&mut self, node: NodeId) -> usize {
        let mut lost = 0;
        for outs in self.outputs.values_mut() {
            let before = outs.len();
            outs.retain(|_, o| o.node != node);
            lost += before - outs.len();
        }
        lost
    }

    fn note_missing(&mut self, holes: &[(u64, usize)]) {
        self.missing.extend_from_slice(holes);
    }

    fn take_missing(&mut self) -> Vec<(u64, usize)> {
        std::mem::take(&mut self.missing)
    }

    /// Drop one registered output whose holder cannot be reached right now
    /// (hung, or partitioned away from the fetching node). A pull from it
    /// would stall forever; losing the partition instead routes recovery
    /// through the lineage machinery, which re-runs the producer task.
    fn invalidate_stalled(&mut self, shuffle: u64, partition: usize) {
        let removed = self
            .outputs
            .get_mut(&shuffle)
            .map(|o| o.remove(&partition).is_some())
            .unwrap_or(false);
        if removed {
            self.stalled_lost += 1;
        }
    }

    fn take_stalled_lost(&mut self) -> u64 {
        std::mem::take(&mut self.stalled_lost)
    }
}

/// Where one stage job deposits its partitioned output (set on
/// [`Job::shuffle`]). The driver partitions emitted pairs by
/// `stable_hash(key) % n_partitions` — the same function classic reduce
/// jobs use — and registers them at commit.
#[derive(Clone)]
pub struct ShuffleSink {
    pub(crate) shuffle_id: u64,
    pub(crate) n_partitions: usize,
    /// Stage partition id of each job task index: a recompute job covers a
    /// sparse subset of the stage's partitions, so job task `i` registers
    /// as stage partition `task_ids[i]`.
    pub(crate) task_ids: Rc<Vec<usize>>,
    pub(crate) store: SharedShuffleStore,
}

// ---------------------------------------------------------------------------
// Shuffle fetcher: delivers one stage partition's input pairs
// ---------------------------------------------------------------------------

/// Fetches partition `partition` of every map output of `sources` (one
/// entry per parent dataset, tagged) as [`TaskInput::Pairs`], modelling one
/// network flow per holding node. A hole (an expected output not in the
/// store) fails the attempt and records the hole so the DAG driver can tell
/// lineage loss from a genuine task error.
struct ShuffleFetcher {
    sources: Vec<(u64, u8)>,
    partition: usize,
    store: SharedShuffleStore,
}

impl SplitFetcher for ShuffleFetcher {
    fn fetch(&self, env: &MrEnv, sim: &mut Sim, node: NodeId, done: FetchDone) {
        let mut transfers: Vec<(NodeId, usize)> = Vec::new();
        let mut pairs: Vec<(u8, String, Payload)> = Vec::new();
        let mut holes: Vec<(u64, usize)> = Vec::new();
        let mut stalled: Vec<(u64, usize)> = Vec::new();
        let now = sim.now().secs();
        {
            let mut store = self.store.borrow_mut();
            for &(shuffle, tag) in &self.sources {
                for m in 0..store.n_expected(shuffle) {
                    let Some(out) = store.get(shuffle, m) else {
                        holes.push((shuffle, m));
                        continue;
                    };
                    // A holder the fetching node cannot reach (hung, or on
                    // the far side of an active partition) would stall this
                    // pull forever. Invalidate the output instead: the
                    // lineage machinery re-runs the producer on a live node
                    // and the refetch succeeds.
                    if sim.faults.node_hung(out.node.0, now)
                        || sim.faults.partitioned(out.node.0, node.0, now)
                    {
                        stalled.push((shuffle, m));
                        continue;
                    }
                    let Some(kvs) = out.parts.get(self.partition) else {
                        continue;
                    };
                    if kvs.is_empty() {
                        continue;
                    }
                    let bytes: usize = kvs
                        .iter()
                        .map(|kv| kv.key.len() + kv.value.approx_bytes())
                        .sum();
                    transfers.push((out.node, bytes));
                    for kv in kvs {
                        pairs.push((tag, kv.key.clone(), kv.value.clone()));
                    }
                }
            }
            for &(s, m) in &stalled {
                store.invalidate_stalled(s, m);
            }
            if !holes.is_empty() {
                store.note_missing(&holes);
            }
            if !stalled.is_empty() {
                store.note_missing(&stalled);
            }
        }
        if !holes.is_empty() || !stalled.is_empty() {
            let e = MrError::msg(format!(
                "shuffle partition {} unavailable: {} lost upstream output(s) {:?}, \
                 {} stalled holder(s) {:?}",
                self.partition,
                holes.len(),
                holes,
                stalled.len(),
                stalled
            ));
            sim.after(0.0, move |sim| done(sim, Err(e)));
            return;
        }
        let total_bytes: usize = transfers.iter().map(|&(_, b)| b).sum();
        let mut fr = FetchResult::plain(TaskInput::Pairs(pairs));
        fr.counters.push((keys::SHUFFLE_BYTES, total_bytes as f64));
        if transfers.is_empty() {
            sim.after(0.0, move |sim| done(sim, Ok(fr)));
            return;
        }
        // All pulls run concurrently; the fetch completes when the last
        // flow arrives (same shape as the classic reduce shuffle).
        let remaining = Rc::new(RefCell::new(transfers.len()));
        let finish = Rc::new(RefCell::new(Some((done, fr))));
        for (src, bytes) in transfers {
            let flow = sim.cost.lbytes(bytes);
            let path = env.topo.path_net(src, node);
            let (remaining, finish) = (remaining.clone(), finish.clone());
            sim.start_flow(path, flow, move |sim| {
                let arrived_all = {
                    let mut rem = remaining.borrow_mut();
                    *rem -= 1;
                    *rem == 0
                };
                if arrived_all {
                    if let Some((done, fr)) = finish.borrow_mut().take() {
                        done(sim, Ok(fr));
                    }
                }
            });
        }
    }

    fn describe(&self) -> String {
        let ids: Vec<u64> = self.sources.iter().map(|&(s, _)| s).collect();
        format!("shuffle://{ids:?}#p{}", self.partition)
    }
}

// ---------------------------------------------------------------------------
// Stage cutting
// ---------------------------------------------------------------------------

enum NarrowOp {
    Map(PairMapFn),
    Filter(PairFilterFn),
}

enum StageInput {
    /// Leaf stage: one task per split.
    Source(Vec<InputSplit>),
    /// Post-shuffle stage: one task per shuffle partition, pulling from
    /// every `(shuffle id, parent tag)` source.
    Shuffle(Vec<(u64, u8)>),
}

struct Stage {
    input: StageInput,
    n_tasks: usize,
    /// Shuffle this stage's tasks register into (the final stage registers
    /// its results under a dedicated id with one bucket per task).
    out_shuffle: u64,
    out_partitions: usize,
    task_fn: MapFn,
    op: &'static str,
}

fn apply_narrow(
    ops: &[NarrowOp],
    mut records: Vec<(String, Payload)>,
    ctx: &mut TaskCtx,
) -> Result<Vec<(String, Payload)>, MrError> {
    for op in ops {
        match op {
            NarrowOp::Map(f) => {
                let mut next = Vec::with_capacity(records.len());
                for (k, v) in records {
                    next.extend(f(&k, v, ctx)?);
                }
                records = next;
            }
            NarrowOp::Filter(pred) => records.retain(|(k, v)| pred(k, v)),
        }
    }
    Ok(records)
}

/// Task function of a leaf stage: decode the split, apply the fused narrow
/// chain, emit.
fn compile_source(read: RecordReadFn, narrow: Vec<NarrowOp>) -> MapFn {
    Rc::new(move |input, ctx| {
        let records = read(input, ctx)?;
        for (k, v) in apply_narrow(&narrow, records, ctx)? {
            ctx.emit(k, v);
        }
        Ok(())
    })
}

/// Task function of a post-shuffle stage: group the delivered pairs by key
/// (BTreeMap — deterministic key order), run the wide operator per key,
/// apply the fused narrow chain, emit.
fn compile_grouped(group: GroupFn, narrow: Vec<NarrowOp>) -> MapFn {
    Rc::new(move |input, ctx| {
        let TaskInput::Pairs(pairs) = input else {
            return Err(MrError::msg("shuffle stage expects pair input"));
        };
        let in_bytes: usize = pairs
            .iter()
            .map(|(_, k, v)| k.len() + v.approx_bytes())
            .sum();
        // Same sort/merge cost shape as the classic reduce path.
        ctx.charge(
            "sort",
            ctx.cost().lbytes(in_bytes) * ctx.cost().sort_per_byte,
        );
        let mut groups: BTreeMap<String, Vec<(u8, Payload)>> = BTreeMap::new();
        for (tag, k, v) in pairs {
            groups.entry(k).or_default().push((tag, v));
        }
        let mut records = Vec::new();
        for (key, tagged) in groups {
            records.extend(group(&key, tagged, ctx)?);
        }
        for (k, v) in apply_narrow(&narrow, records, ctx)? {
            ctx.emit(k, v);
        }
        Ok(())
    })
}

struct PlanBuild {
    stages: Vec<Stage>,
    next_shuffle: u64,
}

impl PlanBuild {
    fn alloc_shuffle(&mut self) -> u64 {
        self.next_shuffle += 1;
        self.next_shuffle
    }
}

/// Compile the stage that produces `ds` into `(out_shuffle, out_partitions)`,
/// recursing into parents first so stage ids are topologically ordered.
/// Returns the stage's index.
fn build_stage(b: &mut PlanBuild, ds: &Dataset, out_shuffle: u64, out_partitions: usize) -> usize {
    // Peel the narrow chain off the plan tail; it fuses into this stage.
    let mut narrow: Vec<NarrowOp> = Vec::new();
    let mut base = ds.clone();
    loop {
        let next = match &*base.node {
            PlanNode::Map { parent, f } => {
                narrow.push(NarrowOp::Map(f.clone()));
                parent.clone()
            }
            PlanNode::Filter { parent, pred } => {
                narrow.push(NarrowOp::Filter(pred.clone()));
                parent.clone()
            }
            PlanNode::Source { .. } | PlanNode::Shuffle { .. } => break,
        };
        base = next;
    }
    narrow.reverse();
    let stage = match &*base.node {
        PlanNode::Source { splits, read } => Stage {
            n_tasks: splits.len(),
            input: StageInput::Source(splits.clone()),
            out_shuffle,
            out_partitions,
            task_fn: compile_source(read.clone(), narrow),
            op: "source",
        },
        PlanNode::Shuffle {
            parents,
            n_partitions,
            group,
            op,
        } => {
            let mut sources = Vec::with_capacity(parents.len());
            for (tag, parent) in parents.iter().enumerate() {
                let sid = b.alloc_shuffle();
                build_stage(b, parent, sid, *n_partitions);
                sources.push((sid, tag as u8));
            }
            Stage {
                input: StageInput::Shuffle(sources),
                n_tasks: *n_partitions,
                out_shuffle,
                out_partitions,
                task_fn: compile_grouped(group.clone(), narrow),
                op,
            }
        }
        // Unreachable: the loop above only stops on Source/Shuffle.
        PlanNode::Map { .. } | PlanNode::Filter { .. } => Stage {
            n_tasks: 0,
            input: StageInput::Source(Vec::new()),
            out_shuffle,
            out_partitions,
            task_fn: Rc::new(|_, _| Ok(())),
            op: "narrow",
        },
    };
    b.stages.push(stage);
    b.stages.len() - 1
}

// ---------------------------------------------------------------------------
// DAG driver
// ---------------------------------------------------------------------------

/// A DAG job: a dataset plan plus the execution policy every stage job
/// inherits. Final records are written as `part-<partition>` files under
/// `output_dir`, serialized exactly like classic job output.
#[derive(Clone)]
pub struct DagJob {
    pub name: String,
    pub plan: Dataset,
    pub output_dir: String,
    /// Part files go to the PFS instead of HDFS.
    pub output_to_pfs: bool,
    /// Stage spills cross the network to the PFS (connector mode).
    pub spill_to_pfs: bool,
    pub ft: FtConfig,
    pub stream: StreamConfig,
}

impl DagJob {
    pub fn new(name: impl Into<String>, plan: Dataset, output_dir: impl Into<String>) -> DagJob {
        DagJob {
            name: name.into(),
            plan,
            output_dir: output_dir.into(),
            output_to_pfs: false,
            spill_to_pfs: false,
            ft: FtConfig::default(),
            stream: StreamConfig::default(),
        }
    }
}

/// One stage-job submission (initial run or lineage recompute).
#[derive(Clone, Debug)]
pub struct StageRun {
    pub stage: usize,
    /// Wide-operator name ("source" for leaf stages).
    pub op: &'static str,
    pub start_s: f64,
    pub end_s: f64,
    /// Partitions this submission covered.
    pub n_tasks: usize,
    /// How many of them re-ran a previously-committed partition.
    pub recomputed: usize,
    /// Whether the stage job succeeded (a failed run with recorded shuffle
    /// holes triggers lineage recovery instead of failing the DAG).
    pub ok: bool,
}

/// Completed DAG summary.
#[derive(Clone, Debug)]
pub struct DagResult {
    pub name: String,
    pub start_s: f64,
    pub end_s: f64,
    /// Merged counters of every committed stage task plus the DAG-level
    /// `stages_run` / `lineage_recomputes` / `shuffle_partitions_lost`.
    pub counters: Counters,
    /// Every stage-job submission, in execution order.
    pub runs: Vec<StageRun>,
    pub n_stages: usize,
    /// Tasks in one clean end-to-end pass (Σ stage partition counts).
    pub total_tasks: usize,
}

impl DagResult {
    pub fn elapsed(&self) -> f64 {
        self.end_s - self.start_s
    }

    /// Tasks actually executed across all submissions.
    pub fn tasks_executed(&self) -> usize {
        self.runs.iter().map(|r| r.n_tasks).sum()
    }
}

struct DagDriver {
    env: MrEnv,
    name: String,
    output_dir: String,
    output_to_pfs: bool,
    spill_to_pfs: bool,
    ft: FtConfig,
    stream: StreamConfig,
    stages: Vec<Stage>,
    /// shuffle id → index of the stage producing it.
    producer: BTreeMap<u64, usize>,
    final_stage: usize,
    store: SharedShuffleStore,
    /// Per stage, per partition: has this partition ever committed? A
    /// resubmission of a once-committed partition is a lineage recompute.
    committed_once: Vec<Vec<bool>>,
    counters: Counters,
    runs: Vec<StageRun>,
    start_s: f64,
    submissions: usize,
    max_submissions: usize,
    writing: bool,
    #[allow(clippy::type_complexity)]
    done_cb: Option<Box<dyn FnOnce(&mut Sim, Result<DagResult, MrError>)>>,
}

type SharedDag = Rc<RefCell<DagDriver>>;

impl DagDriver {
    fn missing_of(&self, stage: &Stage) -> Vec<usize> {
        let store = self.store.borrow();
        (0..stage.n_tasks)
            .filter(|&p| !store.has(stage.out_shuffle, p))
            .collect()
    }

    /// The first (topologically) stage that is missing outputs *and* still
    /// needed: the final stage is always needed; a parent only while some
    /// needed descendant is incomplete (a complete descendant never
    /// re-fetches, so its parents' lost outputs can stay lost).
    fn pick_next(&self) -> Option<(usize, Vec<usize>)> {
        let n = self.stages.len();
        let mut needed = vec![false; n];
        if let Some(slot) = needed.get_mut(self.final_stage) {
            *slot = true;
        }
        for idx in (0..n).rev() {
            if !needed.get(idx).copied().unwrap_or(false) {
                continue;
            }
            let Some(stage) = self.stages.get(idx) else {
                continue;
            };
            if self.missing_of(stage).is_empty() {
                continue;
            }
            if let StageInput::Shuffle(sources) = &stage.input {
                for (sid, _) in sources {
                    if let Some(&p) = self.producer.get(sid) {
                        if let Some(slot) = needed.get_mut(p) {
                            *slot = true;
                        }
                    }
                }
            }
        }
        for (idx, stage) in self.stages.iter().enumerate() {
            if !needed.get(idx).copied().unwrap_or(false) {
                continue;
            }
            let missing = self.missing_of(stage);
            if !missing.is_empty() {
                return Some((idx, missing));
            }
        }
        None
    }

    /// Mark every currently-registered partition of `stage` as committed.
    fn refresh_committed(&mut self, idx: usize) {
        let Some(stage) = self.stages.get(idx) else {
            return;
        };
        let store = self.store.borrow();
        let Some(slots) = self.committed_once.get_mut(idx) else {
            return;
        };
        for (p, slot) in slots.iter_mut().enumerate() {
            if store.has(stage.out_shuffle, p) {
                *slot = true;
            }
        }
    }
}

/// Submit a DAG; `done` fires with the result once every final part file is
/// written (or with the first unrecoverable error).
pub fn submit_dag(
    sim: &mut Sim,
    env: MrEnv,
    dag: DagJob,
    done: impl FnOnce(&mut Sim, Result<DagResult, MrError>) + 'static,
) {
    let mut b = PlanBuild {
        stages: Vec::new(),
        next_shuffle: 0,
    };
    let result_shuffle = b.alloc_shuffle();
    let final_stage = build_stage(&mut b, &dag.plan, result_shuffle, 1);
    let stages = b.stages;
    let store: SharedShuffleStore = Rc::new(RefCell::new(ShuffleStore::default()));
    {
        let mut s = store.borrow_mut();
        for stage in &stages {
            s.set_expected(stage.out_shuffle, stage.n_tasks);
        }
    }
    let producer: BTreeMap<u64, usize> = stages
        .iter()
        .enumerate()
        .map(|(i, s)| (s.out_shuffle, i))
        .collect();
    let committed_once = stages.iter().map(|s| vec![false; s.n_tasks]).collect();
    let n_stages = stages.len();
    let now = sim.now().secs();
    let d: SharedDag = Rc::new(RefCell::new(DagDriver {
        env,
        name: dag.name,
        output_dir: dag.output_dir,
        output_to_pfs: dag.output_to_pfs,
        spill_to_pfs: dag.spill_to_pfs,
        ft: dag.ft,
        stream: dag.stream,
        stages,
        producer,
        final_stage,
        store: store.clone(),
        committed_once,
        counters: Counters::new(),
        runs: Vec::new(),
        start_s: now,
        submissions: 0,
        max_submissions: n_stages * 8 + 8,
        writing: false,
        done_cb: Some(Box::new(done)),
    }));
    // Watch future planned node kills: a death invalidates every shuffle
    // output the node held (the stage jobs independently watch the same
    // plan for their own in-flight attempts).
    let kills: Vec<(u32, f64)> = sim
        .faults
        .plan()
        .node_kills
        .iter()
        .filter(|&&(_, t)| t.is_finite() && t > now)
        .cloned()
        .collect();
    for (node, t) in kills {
        let d2 = d.clone();
        sim.at(simnet::SimTime(t), move |_sim| {
            let mut dd = d2.borrow_mut();
            if dd.done_cb.is_none() {
                return;
            }
            let lost = dd.store.borrow_mut().invalidate_node(NodeId(node));
            if lost > 0 {
                dd.counters.add(keys::SHUFFLE_PARTITIONS_LOST, lost as f64);
            }
            // The node's cluster-cache residency dies with it too — a
            // between-stages kill must not leave ghost entries steering
            // the next stage's placement (the stage jobs only invalidate
            // for kills that land while they run).
            dd.env.cluster_cache.invalidate_node(NodeId(node));
        });
    }
    advance(sim, &d);
}

/// Convenience: submit, run the world to completion, return the result.
pub fn run_dag(cluster: &mut Cluster, dag: DagJob) -> Result<DagResult, MrError> {
    let out: Rc<RefCell<Option<Result<DagResult, MrError>>>> = Rc::new(RefCell::new(None));
    let o = out.clone();
    let env = cluster.env();
    submit_dag(&mut cluster.sim, env, dag, move |_, r| {
        *o.borrow_mut() = Some(r);
    });
    cluster.run();
    let taken = out.borrow_mut().take();
    match taken {
        Some(r) => r,
        None => Err(MrError::msg("dag did not complete")),
    }
}

enum Step {
    Submit {
        idx: usize,
        missing: Vec<usize>,
        recomputed: usize,
    },
    Write,
    Fail(MrError),
    Wait,
}

fn advance(sim: &mut Sim, d: &SharedDag) {
    let step = {
        let mut dd = d.borrow_mut();
        if dd.done_cb.is_none() {
            return;
        }
        match dd.pick_next() {
            Some((idx, missing)) => {
                dd.submissions += 1;
                if dd.submissions > dd.max_submissions {
                    Step::Fail(MrError::msg(format!(
                        "dag {}: gave up after {} stage submissions (lineage not converging)",
                        dd.name, dd.max_submissions
                    )))
                } else {
                    let recomputed = missing
                        .iter()
                        .filter(|&&p| {
                            dd.committed_once
                                .get(idx)
                                .and_then(|v| v.get(p))
                                .copied()
                                .unwrap_or(false)
                        })
                        .count();
                    dd.counters.add(keys::STAGES_RUN, 1.0);
                    if recomputed > 0 {
                        dd.counters.add(keys::LINEAGE_RECOMPUTES, recomputed as f64);
                    }
                    Step::Submit {
                        idx,
                        missing,
                        recomputed,
                    }
                }
            }
            None if dd.writing => Step::Wait,
            None => {
                dd.writing = true;
                Step::Write
            }
        }
    };
    match step {
        Step::Submit {
            idx,
            missing,
            recomputed,
        } => submit_stage(sim, d, idx, missing, recomputed),
        Step::Write => start_output_writes(sim, d),
        Step::Fail(e) => fail_dag(sim, d, e),
        Step::Wait => {}
    }
}

fn submit_stage(sim: &mut Sim, d: &SharedDag, idx: usize, missing: Vec<usize>, recomputed: usize) {
    let (job, env, op) = {
        let dd = d.borrow();
        let Some(stage) = dd.stages.get(idx) else {
            return;
        };
        let splits: Vec<InputSplit> = match &stage.input {
            StageInput::Source(splits) => missing
                .iter()
                .filter_map(|&p| splits.get(p).cloned())
                .collect(),
            StageInput::Shuffle(sources) => missing
                .iter()
                .map(|&p| InputSplit {
                    length: 0,
                    locations: Vec::new(),
                    fetcher: Rc::new(ShuffleFetcher {
                        sources: sources.clone(),
                        partition: p,
                        store: dd.store.clone(),
                    }),
                })
                .collect(),
        };
        let job = Job {
            name: format!("{}/s{}r{}", dd.name, idx, dd.submissions),
            splits,
            map_fn: stage.task_fn.clone(),
            reduce_fn: None,
            n_reducers: 1,
            output_dir: format!("{}/_dag/s{}", dd.output_dir, idx),
            spill_to_pfs: dd.spill_to_pfs,
            output_to_pfs: dd.output_to_pfs,
            ft: dd.ft.clone(),
            stream: dd.stream.clone(),
            shuffle: Some(ShuffleSink {
                shuffle_id: stage.out_shuffle,
                n_partitions: stage.out_partitions,
                task_ids: Rc::new(missing.clone()),
                store: dd.store.clone(),
            }),
        };
        (job, dd.env.clone(), stage.op)
    };
    let n_tasks = missing.len();
    let start_s = sim.now().secs();
    let d2 = d.clone();
    submit_job_env(sim, env, job, move |sim, res| {
        on_stage_done(sim, &d2, idx, op, start_s, n_tasks, recomputed, res)
    });
}

#[allow(clippy::too_many_arguments)]
fn on_stage_done(
    sim: &mut Sim,
    d: &SharedDag,
    idx: usize,
    op: &'static str,
    start_s: f64,
    n_tasks: usize,
    recomputed: usize,
    res: Result<crate::job::JobResult, MrError>,
) {
    let failure = {
        let mut dd = d.borrow_mut();
        if dd.done_cb.is_none() {
            return;
        }
        dd.refresh_committed(idx);
        let stalled = dd.store.borrow_mut().take_stalled_lost();
        if stalled > 0 {
            dd.counters
                .add(keys::SHUFFLE_PARTITIONS_LOST, stalled as f64);
        }
        dd.runs.push(StageRun {
            stage: idx,
            op,
            start_s,
            end_s: sim.now().secs(),
            n_tasks,
            recomputed,
            ok: res.is_ok(),
        });
        match res {
            Ok(jr) => {
                dd.counters.merge(&jr.counters);
                None
            }
            Err(e) => {
                // A failure with recorded shuffle holes is lineage loss:
                // the next advance() walks back to the first incomplete
                // ancestor. Anything else is a real error.
                let holes = dd.store.borrow_mut().take_missing();
                if holes.is_empty() {
                    Some(e)
                } else {
                    None
                }
            }
        }
    };
    match failure {
        Some(e) => fail_dag(sim, d, e),
        None => advance(sim, d),
    }
}

/// All stages complete: serialize each final partition (in partition
/// order) and write its part file from the node that produced it.
fn start_output_writes(sim: &mut Sim, d: &SharedDag) {
    let writes: VecDeque<(NodeId, String, Vec<u8>)> = {
        let dd = d.borrow();
        let store = dd.store.borrow();
        let mut out = VecDeque::new();
        if let Some(stage) = dd.stages.get(dd.final_stage) {
            for p in 0..stage.n_tasks {
                if let Some(stored) = store.get(stage.out_shuffle, p) {
                    let kvs: Vec<Kv> = stored.parts.iter().flatten().cloned().collect();
                    let data = serialize_kvs(&kvs);
                    if !data.is_empty() {
                        out.push_back((
                            stored.node,
                            format!("{}/part-{p:05}", dd.output_dir),
                            data,
                        ));
                    }
                }
            }
        }
        out
    };
    write_next(sim, d, writes);
}

fn write_next(sim: &mut Sim, d: &SharedDag, mut writes: VecDeque<(NodeId, String, Vec<u8>)>) {
    let Some((node, path, data)) = writes.pop_front() else {
        complete_dag(sim, d);
        return;
    };
    let (env, to_pfs) = {
        let mut dd = d.borrow_mut();
        if dd.done_cb.is_none() {
            return;
        }
        let key = if dd.output_to_pfs {
            keys::PFS_WRITE_BYTES
        } else {
            keys::HDFS_WRITE_BYTES
        };
        dd.counters.add(key, data.len() as f64);
        (dd.env.clone(), dd.output_to_pfs)
    };
    let d2 = d.clone();
    if to_pfs {
        pfs::write_new(sim, &env.topo, &env.pfs, node, path, data, move |sim| {
            write_next(sim, &d2, writes)
        });
    } else {
        {
            // Replace any stale part file from an earlier run of the same
            // output dir (mirrors the task-output promotion path).
            let mut h = env.hdfs.borrow_mut();
            if let Ok(ids) = h.namenode.delete(&path) {
                h.datanodes.reclaim(&ids);
            }
        }
        let res = hdfs::write_file(sim, &env.topo, &env.hdfs, node, path, data, move |sim| {
            write_next(sim, &d2, writes)
        });
        if let Err(e) = res {
            fail_dag(sim, d, MrError::msg(format!("hdfs: {e}")));
        }
    }
}

fn complete_dag(sim: &mut Sim, d: &SharedDag) {
    let (result, cb) = {
        let mut dd = d.borrow_mut();
        if dd.done_cb.is_none() {
            return;
        }
        let result = DagResult {
            name: dd.name.clone(),
            start_s: dd.start_s,
            end_s: sim.now().secs(),
            counters: dd.counters.clone(),
            runs: std::mem::take(&mut dd.runs),
            n_stages: dd.stages.len(),
            total_tasks: dd.stages.iter().map(|s| s.n_tasks).sum(),
        };
        (result, dd.done_cb.take())
    };
    if let Some(cb) = cb {
        cb(sim, Ok(result));
    }
}

fn fail_dag(sim: &mut Sim, d: &SharedDag, e: MrError) {
    let cb = d.borrow_mut().done_cb.take();
    if let Some(cb) = cb {
        cb(sim, Err(e));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::InMemoryFetcher;
    use pfs::PfsConfig;
    use simnet::{ClusterSpec, CostModel, FaultPlan};

    fn small_cluster(nodes: usize, slots: usize) -> Cluster {
        let spec = ClusterSpec {
            compute_nodes: nodes,
            storage_nodes: 1,
            osts: 2,
            slots_per_node: slots,
            ..ClusterSpec::default()
        };
        let pfs_cfg = PfsConfig {
            n_osts: 2,
            ..PfsConfig::default()
        };
        Cluster::new(spec, pfs_cfg, 1 << 16, 1, CostModel::default())
    }

    fn mem_splits(n: usize, bytes: usize) -> Vec<InputSplit> {
        (0..n)
            .map(|i| InputSplit {
                length: bytes as u64,
                locations: vec![],
                fetcher: Rc::new(InMemoryFetcher {
                    data: vec![i as u8; bytes],
                }),
            })
            .collect()
    }

    /// Decode a split's bytes into per-byte-value count records (the DAG
    /// analogue of the classic word-count map function).
    fn count_reader() -> RecordReadFn {
        Rc::new(|input, ctx| {
            let TaskInput::Bytes(b) = input else {
                return Err(MrError::msg("expected bytes"));
            };
            ctx.charge("scan", ctx.cost().scan_per_byte * b.len() as f64);
            let mut counts: BTreeMap<u8, usize> = BTreeMap::new();
            for &x in &b {
                *counts.entry(x).or_default() += 1;
            }
            Ok(counts
                .into_iter()
                .map(|(k, v)| (format!("w{k}"), Payload::Bytes(v.to_string().into_bytes())))
                .collect())
        })
    }

    fn sum_agg() -> crate::dataset::AggFn {
        Rc::new(|_key, values, _ctx| {
            let mut total: u64 = 0;
            for v in values {
                let Payload::Bytes(b) = v else {
                    return Err(MrError::msg("expected byte value"));
                };
                total += String::from_utf8_lossy(&b)
                    .parse::<u64>()
                    .map_err(|e| MrError::msg(format!("bad count: {e}")))?;
            }
            Ok(Payload::Bytes(total.to_string().into_bytes()))
        })
    }

    /// Read every `part-*` file under `dir` back from HDFS, in path order,
    /// as one concatenated string.
    fn read_output(c: &Cluster, dir: &str) -> String {
        let h = c.hdfs.borrow();
        let mut files = h.namenode.list_files_recursive(dir).unwrap();
        files.retain(|f| !f.path.contains("/_"));
        files.sort_by(|a, b| a.path.cmp(&b.path));
        let mut out = String::new();
        for f in &files {
            for blk in h.namenode.blocks(&f.path).unwrap() {
                let data = h.datanodes.get(blk.locations()[0], blk.id).unwrap();
                out.push_str(&String::from_utf8_lossy(&data));
            }
        }
        out
    }

    #[test]
    fn two_stage_wordcount_matches_expected() {
        let mut c = small_cluster(2, 2);
        let plan =
            Dataset::from_splits(mem_splits(4, 100), count_reader()).reduce_by_key(2, sum_agg());
        let r = run_dag(&mut c, DagJob::new("wc", plan, "out")).unwrap();
        assert_eq!(r.n_stages, 2);
        assert_eq!(r.counters.get(keys::STAGES_RUN), 2.0);
        assert_eq!(r.counters.get(keys::LINEAGE_RECOMPUTES), 0.0);
        assert_eq!(r.total_tasks, 6); // 4 source + 2 reduce partitions
        assert_eq!(r.tasks_executed(), 6);
        // Each split is 100 copies of one byte value.
        let text = read_output(&c, "out");
        let mut lines: Vec<&str> = text.lines().collect();
        lines.sort_unstable();
        assert_eq!(lines, vec!["w0\t100", "w1\t100", "w2\t100", "w3\t100"]);
    }

    #[test]
    fn narrow_ops_fuse_without_extra_stages() {
        let mut c = small_cluster(2, 2);
        let plan = Dataset::from_splits(mem_splits(3, 60), count_reader())
            .filter(Rc::new(|k, _| k != "w1"))
            .map(Rc::new(|k, v, _ctx| Ok(vec![(format!("x{k}"), v)])))
            .reduce_by_key(2, sum_agg())
            .map(Rc::new(|k, v, _ctx| Ok(vec![(k.to_string(), v)])));
        let r = run_dag(&mut c, DagJob::new("fuse", plan, "out")).unwrap();
        // map/filter fold into the stages around them: still 2 stages.
        assert_eq!(r.n_stages, 2);
        assert_eq!(r.counters.get(keys::STAGES_RUN), 2.0);
        let text = read_output(&c, "out");
        let mut lines: Vec<&str> = text.lines().collect();
        lines.sort_unstable();
        assert_eq!(lines, vec!["xw0\t60", "xw2\t60"]);
    }

    #[test]
    fn join_pairs_left_and_right() {
        let mut c = small_cluster(2, 2);
        let pairs_src = |items: Vec<(&str, &str)>| {
            let records: Vec<(String, Payload)> = items
                .iter()
                .map(|(k, v)| (k.to_string(), Payload::Bytes(v.as_bytes().to_vec())))
                .collect();
            Dataset::from_splits(
                mem_splits(1, 8),
                Rc::new(move |_input, _ctx| Ok(records.clone())),
            )
        };
        let left = pairs_src(vec![("a", "l1"), ("a", "l2"), ("b", "lb")]);
        let right = pairs_src(vec![("a", "r1"), ("c", "rc")]);
        let joined = left.join(&right, 2).map(Rc::new(|k, v, _ctx| {
            let Payload::Bytes(b) = v else {
                return Err(MrError::msg("expected bytes"));
            };
            let (l, r) = crate::dataset::decode_join(&b)?;
            Ok(vec![(
                format!(
                    "{k}:{}+{}",
                    String::from_utf8_lossy(&l),
                    String::from_utf8_lossy(&r)
                ),
                Payload::Bytes(Vec::new()),
            )])
        }));
        let r = run_dag(&mut c, DagJob::new("join", joined, "out")).unwrap();
        // Two source stages + the join stage.
        assert_eq!(r.n_stages, 3);
        let text = read_output(&c, "out");
        let mut lines: Vec<&str> = text.lines().collect();
        lines.sort_unstable();
        // Only key "a" appears on both sides: 2 lefts x 1 right.
        assert_eq!(lines.len(), 2);
        assert!(text.contains("a:l1+r1"));
        assert!(text.contains("a:l2+r1"));
        assert!(!text.contains("b:"));
        assert!(!text.contains("c:"));
    }

    #[test]
    fn node_kill_triggers_partition_granular_lineage_recovery() {
        // Clean run first to learn when stage 1 starts.
        let plan_of = || {
            Dataset::from_splits(mem_splits(4, 100), count_reader())
                .reduce_by_key(4, sum_agg())
                .map(Rc::new(|k, v, _ctx| Ok(vec![(k.to_string(), v)])))
                .reduce_by_key(2, sum_agg())
        };
        let mut clean = small_cluster(4, 1);
        let rc = run_dag(&mut clean, DagJob::new("lin", plan_of(), "out")).unwrap();
        assert_eq!(rc.n_stages, 3);
        let clean_text = read_output(&clean, "out");
        let s2_start = rc
            .runs
            .iter()
            .find(|r| r.stage == 2)
            .map(|r| r.start_s)
            .unwrap();

        // Faulted run: kill a node right as the last stage starts, after
        // stages 0 and 1 committed outputs onto it.
        let mut faulted = small_cluster(4, 1);
        faulted
            .sim
            .faults
            .install(FaultPlan::none().kill_node(1, s2_start + 1e-6));
        let rf = run_dag(&mut faulted, DagJob::new("lin", plan_of(), "out")).unwrap();
        let lost = rf.counters.get(keys::SHUFFLE_PARTITIONS_LOST);
        assert!(lost > 0.0, "the kill must invalidate shuffle outputs");
        // Only once-committed partitions re-ran — exactly the lost ones.
        assert_eq!(rf.counters.get(keys::LINEAGE_RECOMPUTES), lost);
        // Recovery re-runs a strict subset, never the whole DAG again.
        assert!(rf.tasks_executed() < 2 * rf.total_tasks);
        assert_eq!(read_output(&faulted, "out"), clean_text, "byte-identical");
    }
}
