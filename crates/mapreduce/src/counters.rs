//! Job counters (Hadoop-style), deterministic to report.

use std::collections::BTreeMap;

/// Named additive counters collected over a job run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Counters {
    values: BTreeMap<&'static str, f64>,
}

/// Counter names used by the engine.
pub mod keys {
    pub const MAP_TASKS: &str = "map_tasks";
    pub const REDUCE_TASKS: &str = "reduce_tasks";
    pub const INPUT_BYTES: &str = "input_bytes";
    pub const MAP_OUTPUT_BYTES: &str = "map_output_bytes";
    pub const SHUFFLE_BYTES: &str = "shuffle_bytes";
    pub const HDFS_WRITE_BYTES: &str = "hdfs_write_bytes";
    /// Part-file bytes written to the PFS (`output_to_pfs` jobs).
    pub const PFS_WRITE_BYTES: &str = "pfs_write_bytes";
    pub const LOCAL_MAPS: &str = "data_local_maps";
    pub const REMOTE_MAPS: &str = "rack_remote_maps";
    /// Maps over location-less splits (PFS dummy blocks) — neither local
    /// nor remote, locality is simply not a concept for them.
    pub const ANY_MAPS: &str = "any_locality_maps";
    pub const RECORDS_EMITTED: &str = "records_emitted";
    /// Map attempts launched (≥ `map_tasks` under retries/speculation).
    pub const MAP_ATTEMPTS: &str = "map_attempts";
    /// Reduce attempts launched.
    pub const REDUCE_ATTEMPTS: &str = "reduce_attempts";
    /// Attempts re-queued after a failure (I/O error or node death).
    pub const TASK_RETRIES: &str = "task_retries";
    /// Speculative duplicate attempts launched for straggling maps.
    pub const SPECULATIVE_LAUNCHED: &str = "speculative_launched";
    /// Speculative attempts that committed before the original.
    pub const SPECULATIVE_WON: &str = "speculative_won";
    /// Nodes blacklisted after repeated task failures.
    pub const NODE_BLACKLISTED: &str = "node_blacklisted";
    /// Decompressed chunks served from the node-local chunk cache.
    pub const CHUNK_CACHE_HITS: &str = "chunk_cache_hits";
    /// Chunks that had to be read from the PFS and decompressed.
    pub const CHUNK_CACHE_MISSES: &str = "chunk_cache_misses";
    /// Real (wall-clock) seconds spent in the chunk codec during fetches.
    pub const CODEC_DECODE_S: &str = "codec_decode_s";
    /// Payload bytes that passed CRC-32C verification on delivery (HDFS
    /// replica reads and SNC chunk frames).
    pub const CHECKSUM_VERIFIED_BYTES: &str = "checksum_verified_bytes";
    /// Deliveries whose bytes failed checksum verification.
    pub const CORRUPTION_DETECTED: &str = "corruption_detected";
    /// Corrupt deliveries recovered (a clean re-read, or replica fallback).
    pub const CORRUPTION_REPAIRED: &str = "corruption_repaired";
    /// SNC chunks that failed verification twice and were quarantined.
    pub const CHUNKS_QUARANTINED: &str = "chunks_quarantined";
    /// Data Mapper source files revalidated against the PFS at job launch.
    pub const MAPPING_REVALIDATIONS: &str = "mapping_revalidations";
    /// Virtual seconds the streaming input pipeline saved vs running the
    /// same reads and compute back-to-back (Σ over committed map tasks).
    pub const OVERLAP_SAVED_S: &str = "overlap_saved_s";
    /// Stream pieces that were already resident when the compute pipeline
    /// was ready for them (i.e. the prefetch fully hid their read).
    pub const PIECES_PREFETCHED: &str = "pieces_prefetched";
    /// Configured decompressed-chunk cache capacity of the job's reader
    /// (bytes; recorded once per run alongside hit/miss counters).
    pub const CHUNK_CACHE_CAPACITY_BYTES: &str = "chunk_cache_capacity_bytes";
    /// SNC chunks skipped by zone-map pruning before any PFS read or
    /// decompression was attempted.
    pub const CHUNKS_SKIPPED_ZONEMAP: &str = "chunks_skipped_zonemap";
    /// Serialized zone-map header bytes across the job's input variables
    /// (the metadata cost of pushdown; recorded once per run).
    pub const ZONE_MAP_BYTES: &str = "zone_map_bytes";
    /// Compressed PFS bytes whose simulated reads were never issued thanks
    /// to zone-map pruning.
    pub const PUSHDOWN_BYTES_AVOIDED: &str = "pushdown_bytes_avoided";
    /// Rows delivered to the vectorised columnar filter (pre-filter row
    /// count of pushdown batches).
    pub const VECTORISED_ROWS: &str = "vectorised_rows";
    /// Stage jobs submitted by the DAG scheduler, including lineage-driven
    /// re-runs (one per `submit_job_env` of a stage).
    pub const STAGES_RUN: &str = "stages_run";
    /// Tasks re-executed because a lost shuffle/result partition forced its
    /// upstream lineage chain to be recomputed.
    pub const LINEAGE_RECOMPUTES: &str = "lineage_recomputes";
    /// Registered shuffle/result partitions invalidated by node deaths.
    pub const SHUFFLE_PARTITIONS_LOST: &str = "shuffle_partitions_lost";
    /// Committed map tasks that asked for the streaming fetch path but fell
    /// back to a batch fetch (sum of the per-reason fallback counters).
    pub const STREAM_FALLBACKS: &str = "stream_fallbacks";
    /// Fallbacks because the split's fetcher has no streaming support.
    pub const STREAM_FALLBACK_UNSUPPORTED: &str = "stream_fallback_unsupported";
    /// Fallbacks because predicate pushdown delivers pre-filtered frames
    /// the chunk-granular streaming pipeline cannot assemble.
    pub const STREAM_FALLBACK_PUSHDOWN: &str = "stream_fallback_pushdown";
    /// Heartbeats a node failed to deliver on time (hung, partitioned, or
    /// dead nodes miss every tick until declared dead or reinstated).
    pub const HEARTBEATS_MISSED: &str = "heartbeats_missed";
    /// Attempts killed by the per-attempt hang deadline (the operation
    /// never completed — unlike a straggler, which merely finishes late).
    pub const TASKS_HANG_DETECTED: &str = "tasks_hang_detected";
    /// Alternate-replica HDFS transfers launched because the primary
    /// stalled past the hedge deadline.
    pub const HEDGED_READS: &str = "hedged_reads";
    /// Block reads won by a hedge launch (the alternate delivered first).
    pub const HEDGED_READ_WINS: &str = "hedged_read_wins";
    /// Nodes escalated from healthy to suspected by the failure detector.
    pub const NODES_SUSPECTED: &str = "nodes_suspected";
    /// Suspected/declared-dead nodes restored to service after their
    /// heartbeats resumed (e.g. a healed partition).
    pub const NODES_REINSTATED: &str = "nodes_reinstated";
    /// Network partitions whose onset fell inside the job's run.
    pub const PARTITIONS_OBSERVED: &str = "partitions_observed";
    /// Quarantined SNC chunk entries evicted from the bounded quarantine
    /// set (LRU) to keep a long-lived process from growing it unboundedly.
    pub const CHUNKS_QUARANTINED_EVICTED: &str = "chunks_quarantined_evicted";
    /// SNC chunks served decompressed from the cluster cache tier (the
    /// chunk was resident on the executing node from an earlier job or
    /// stage — no PFS read, no codec work).
    pub const CLUSTER_CACHE_HITS: &str = "cluster_cache_hits";
    /// SNC chunks the cluster cache tier did not hold on the executing
    /// node (full PFS read + decompress paid).
    pub const CLUSTER_CACHE_MISSES: &str = "cluster_cache_misses";
    /// Cluster-cache entries evicted during this job (per-job delta of the
    /// registry's lifetime eviction count; LRU, unpinned before pinned).
    pub const CLUSTER_CACHE_EVICTIONS: &str = "cluster_cache_evictions";
    /// Committed maps the scheduler placed on a node *because* it held the
    /// split's chunks in the cluster cache (dynamic cache locality — the
    /// preference tier above static split locality).
    pub const CACHE_LOCALITY_MAPS: &str = "cache_locality_maps";
    /// Compressed PFS bytes whose reads were never issued because the
    /// decompressed chunk was served from the cluster cache tier.
    pub const PFS_BYTES_AVOIDED: &str = "pfs_bytes_avoided";
}

impl Counters {
    pub fn new() -> Counters {
        Counters::default()
    }

    pub fn add(&mut self, key: &'static str, v: f64) {
        *self.values.entry(key).or_insert(0.0) += v;
    }

    pub fn get(&self, key: &str) -> f64 {
        self.values.get(key).copied().unwrap_or(0.0)
    }

    /// All counters, sorted by name.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.values.iter().map(|(k, v)| (*k, *v))
    }

    pub fn merge(&mut self, other: &Counters) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_merge() {
        let mut a = Counters::new();
        a.add(keys::MAP_TASKS, 3.0);
        a.add(keys::MAP_TASKS, 2.0);
        assert_eq!(a.get(keys::MAP_TASKS), 5.0);
        assert_eq!(a.get("missing"), 0.0);
        let mut b = Counters::new();
        b.add(keys::MAP_TASKS, 1.0);
        b.add(keys::INPUT_BYTES, 10.0);
        a.merge(&b);
        assert_eq!(a.get(keys::MAP_TASKS), 6.0);
        assert_eq!(a.get(keys::INPUT_BYTES), 10.0);
        let names: Vec<&str> = a.iter().map(|(k, _)| k).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "iteration is deterministic");
    }
}
