//! # scidp-suite — the SciDP reproduction, in one import
//!
//! A from-scratch Rust reproduction of *SciDP: Support HPC and Big Data
//! Applications via Integrated Scientific Data Processing* (CLUSTER 2018).
//! This facade re-exports every crate of the workspace; the `examples/`
//! directory and `tests/` integration suite build against it.
//!
//! ```
//! use scidp_suite::prelude::*;
//!
//! // Stage a (tiny) synthetic NU-WRF dataset on the simulated PFS...
//! let spec = WrfSpec::tiny(2);
//! let mut cluster = paper_cluster(4, &spec);
//! let ds = stage_nuwrf(&mut cluster, &spec, "nuwrf");
//! // ...and process it with SciDP straight from the PFS: no copy, no
//! // conversion.
//! let cfg = WorkflowConfig { n_reducers: 2, ..WorkflowConfig::img_only(["QR"]) };
//! let report = run_scidp(&mut cluster, &ds.pfs_uri(), &cfg).unwrap();
//! assert_eq!(report.images, 2 * 4); // 2 files x 4 levels
//! ```

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub use baselines;
pub use hdfs;
pub use mapreduce;
pub use pfs;
pub use rframe;
pub use scidp;
pub use scifmt;
pub use simnet;
pub use wrfgen;

/// The names an end-to-end user touches.
pub mod prelude {
    pub use baselines::{
        convert_dataset, data_path_table, paper_cluster, run_naive, run_porthadoop,
        run_scidp_solution, run_scihadoop, run_vanilla, stage_nuwrf, SolutionKind,
    };
    pub use mapreduce::{run_job, Cluster, FtConfig, Job, JobResult, TaskKind};
    pub use rframe::{read_table, sqldf, ColorMap, Column, DataFrame};
    pub use scidp::{run_scidp, Analysis, RJob, ScidpInput, WorkflowConfig, WorkflowReport};
    pub use scifmt::{Array, Codec, SncBuilder, SncFile};
    pub use simnet::{ClusterSpec, CostModel, FaultPlan, Sim};
    pub use wrfgen::{generate_dataset, WrfSpec};
}
